"""Unit tests for the TimelineRecorder (repro.obs.timeline).

The mp/threads integration paths are covered by
tests/runtime/test_timeline_mp.py; here the recorder is driven
directly: event capture, the JSONL log contract (one parseable object
per line, flushed per event), heartbeat aggregation and rate
estimation, progress snapshots across batch boundaries, and the
guard-rails (validation, idempotent close, closed progress streams).
"""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_HEARTBEAT_INTERVAL,
    TimelineRecorder,
    render_progress,
    render_timeline_summary,
)


class TestEventCapture:
    def test_events_recorded_in_order_with_timestamps(self):
        rec = TimelineRecorder()
        rec.event("batch_start", total_queries=10)
        rec.event("dispatch", worker=0, chunk=0, queries=2)
        rec.event("done", worker=0, chunk=0, queries=2)
        events = rec.timeline_events()
        assert [e["kind"] for e in events] == ["batch_start", "dispatch", "done"]
        times = [e["t"] for e in events]
        assert times == sorted(times)
        assert rec.events_of("dispatch") == [events[1]]

    def test_events_counted_in_metrics(self):
        rec = TimelineRecorder()
        rec.event("dispatch", worker=0)
        rec.heartbeat(worker=0, queries_done=1)
        rec.event("stall", worker=0, chunk=0, silent_s=1.0)
        snap = rec.snapshot()
        assert snap["timeline.events"] == 3
        assert snap["timeline.heartbeats"] == 1
        assert snap["timeline.stalls"] == 1

    def test_heartbeat_is_an_event(self):
        rec = TimelineRecorder()
        rec.heartbeat(worker=3, queries_done=7, chunk=2)
        (hb,) = rec.events_of("heartbeat")
        assert hb["worker"] == 3
        assert hb["queries_done"] == 7
        assert hb["chunk"] == 2


class TestJsonlLog:
    def test_one_parseable_object_per_line_flushed_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        rec = TimelineRecorder(events_path=path)
        rec.event("batch_start", total_queries=2)
        rec.event("done", worker=0, queries=2)
        # Flushed per event: readable before close (the crash-survivable
        # replayable-prefix contract).
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["kind"] for p in parsed] == ["batch_start", "done"]
        rec.close()

    def test_close_is_idempotent_and_stops_writing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        rec = TimelineRecorder(events_path=path)
        rec.event("done", worker=0, queries=1)
        rec.close()
        rec.close()
        # In-memory capture continues; the file does not grow.
        rec.event("done", worker=0, queries=1)
        assert len(rec.timeline_events()) == 2
        assert len(path.read_text().splitlines()) == 1

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TimelineRecorder(events_path=path) as rec:
            rec.event("done", worker=0, queries=1)
        assert rec._fh is None


class TestHeartbeatAggregation:
    def test_last_heartbeat_and_rates_from_two_samples(self):
        rec = TimelineRecorder()
        assert rec.last_heartbeat(0) is None
        rec.heartbeat(worker=0, queries_done=0)
        assert rec.worker_rates() == {}  # one sample: no rate yet
        rec.heartbeat(worker=0, queries_done=10)
        assert rec.last_heartbeat(0) is not None
        rates = rec.worker_rates()
        assert 0 in rates and rates[0] > 0

    def test_samples_without_progress_field_yield_no_rate(self):
        rec = TimelineRecorder()
        rec.heartbeat(worker=1, chunk=0)
        rec.heartbeat(worker=1, chunk=0)
        assert rec.worker_rates() == {}

    def test_epoch_lag_tracked_from_samples(self):
        rec = TimelineRecorder()
        rec.heartbeat(worker=0, queries_done=1, epoch_lag=5)
        assert rec.progress_snapshot()["epoch_lag"] == 5


class TestProgress:
    def test_snapshot_accumulates_done_and_faults(self):
        rec = TimelineRecorder()
        rec.event("batch_start", total_queries=20)
        rec.event("done", worker=0, queries=3)
        rec.event("done", worker=1, queries=4)
        rec.event("crash", worker=0, reason="killed")
        rec.event("stall", worker=1, chunk=2, silent_s=1.0)
        snap = rec.progress_snapshot()
        assert snap["done"] == 7
        assert snap["total"] == 20
        assert snap["crashes"] == 1
        assert snap["stalls"] == 1

    def test_batch_start_resets_progress_not_fault_totals(self):
        rec = TimelineRecorder()
        rec.event("batch_start", total_queries=5)
        rec.event("done", worker=0, queries=5)
        rec.event("crash", worker=0, reason="killed")
        rec.event("batch_start", total_queries=9)
        snap = rec.progress_snapshot()
        assert snap["done"] == 0
        assert snap["total"] == 9
        assert snap["crashes"] == 1  # faults are run-wide, not per-batch

    def test_progress_stream_receives_report(self):
        stream = io.StringIO()
        rec = TimelineRecorder(progress_stream=stream, progress_interval=0.0)
        rec.event("batch_start", total_queries=4)
        rec.event("done", worker=0, queries=4)
        out = stream.getvalue()
        assert "progress" in out and "4/4 queries" in out

    def test_closed_progress_stream_never_raises(self):
        stream = io.StringIO()
        rec = TimelineRecorder(progress_stream=stream, progress_interval=0.0)
        stream.close()
        rec.event("done", worker=0, queries=1)  # must not raise

    def test_render_progress_shows_optional_parts_only_when_nonzero(self):
        rec = TimelineRecorder()
        rec.event("batch_start", total_queries=2)
        rec.event("done", worker=0, queries=1)
        line = render_progress(rec)
        assert "1/2 queries" in line
        assert "crash" not in line and "stall" not in line
        rec.event("crash", worker=0, reason="x")
        assert "crashes 1" in render_progress(rec)


class TestSummary:
    def test_summary_counts_kinds_and_details_stalls(self):
        rec = TimelineRecorder()
        rec.event("dispatch", worker=0, chunk=0)
        rec.event("stall", worker=0, chunk=0, silent_s=2.5)
        text = render_timeline_summary(rec)
        assert "dispatch" in text and "stall" in text
        assert "worker 0 on chunk 0" in text

    def test_summary_empty(self):
        assert "no events" in render_timeline_summary(TimelineRecorder())


class TestValidation:
    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError):
            TimelineRecorder(heartbeat_interval=0)
        with pytest.raises(ValueError):
            TimelineRecorder(stall_after=-1.0)

    def test_defaults(self):
        rec = TimelineRecorder()
        assert rec.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL
        assert rec.stall_after == pytest.approx(4 * DEFAULT_HEARTBEAT_INTERVAL)
