"""Edge cases of the obs.report renderers: empty batches, all-zero
counter maps, and deterministic tie-breaking in the hot-query ranking.
"""

from repro.core import Query
from repro.core.query import QueryCosts, QueryResult
from repro.obs.report import (
    hot_queries,
    render_hot_queries,
    render_metrics_table,
)
from repro.runtime import ParallelCFL
from repro.runtime.results import BatchResult, QueryExecution


def _execution(var, ctx=(), start=0.0, finish=1.0, worker=0):
    result = QueryResult(
        query=Query(var, ctx), points_to=frozenset(),
        costs=QueryCosts(), exhausted=False,
    )
    return QueryExecution(result, worker, start, finish)


class TestEmptyInputs:
    def test_metrics_table_with_no_counters(self):
        assert "no counters" in render_metrics_table({})

    def test_hot_queries_empty_batch_via_executor(self, fig2):
        b, _ = fig2
        batch = ParallelCFL(b, mode="seq").run([])
        assert hot_queries(batch) == []
        assert "empty" in render_hot_queries(batch).lower()


class TestAllZeroCounters:
    def test_zero_values_render_not_dropped(self):
        # A zero is informative (jumps.hits == 0 on mode=naive), so the
        # table keeps the row instead of hiding it.
        table = render_metrics_table({"jumps.hits": 0, "engine.queries": 0})
        assert "jumps.hits" in table and "engine.queries" in table
        assert "[jumps]" in table and "[engine]" in table

    def test_all_zero_durations_do_not_divide_by_zero(self):
        batch = BatchResult(
            mode="seq", n_threads=1,
            executions=[_execution(5, start=0.0, finish=0.0)],
            makespan=0.0, worker_busy=[0.0],
        )
        text = render_hot_queries(batch)
        assert "node5" in text  # rendered, no ZeroDivisionError


class TestTieBreaking:
    def test_equal_durations_rank_by_var_then_ctx(self):
        # Three executions with identical durations, inserted in
        # shuffled order: the ranking must be (var, ctx)-deterministic,
        # not arrival-order.
        batch = BatchResult(
            mode="seq", n_threads=1,
            executions=[
                _execution(9, ctx=(1,)),
                _execution(3, ctx=(2,)),
                _execution(9, ctx=(0,)),
                _execution(3, ctx=(1,)),
            ],
            makespan=1.0, worker_busy=[4.0],
        )
        rows = hot_queries(batch, top=10)
        assert [(r["var"],) for r in rows] == [(3,), (3,), (9,), (9,)]
        # Same-var ties fall through to the context.
        assert [r["query"] for r in rows] == [
            "node3@1", "node3@2", "node9@0", "node9@1",
        ]

    def test_longer_duration_still_dominates_tiebreak(self):
        batch = BatchResult(
            mode="seq", n_threads=1,
            executions=[
                _execution(1, finish=1.0),
                _execution(2, finish=5.0),
            ],
            makespan=5.0, worker_busy=[6.0],
        )
        rows = hot_queries(batch, top=10)
        assert [r["var"] for r in rows] == [2, 1]
