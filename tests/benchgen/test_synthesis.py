"""Unit tests for the synthetic benchmark generator and suite."""

import pytest

from repro.andersen import AndersenSolver
from repro.benchgen import (
    SUITE,
    SynthesisParams,
    load_benchmark,
    queries_for_class,
    queries_for_method,
    standard_workload,
    suite_names,
    synthesize_program,
)
from repro.benchgen.suites import spec_of
from repro.core import CFLEngine, EngineConfig
from repro.errors import ReproError
from repro.ir.validator import validate_program
from repro.pag import build_pag


SMALL = SynthesisParams(seed=42, n_app_classes=2, methods_per_app_class=2, actions_per_method=4)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_program(SMALL)
        b = synthesize_program(SMALL)
        assert a.counts() == b.counts()
        pa, pb = build_pag(a), build_pag(b)
        assert pa.pag.n_nodes == pb.pag.n_nodes
        assert pa.pag.n_edges == pb.pag.n_edges

    def test_different_seeds_differ(self):
        a = synthesize_program(SMALL)
        b = synthesize_program(SynthesisParams(seed=43, n_app_classes=2,
                                               methods_per_app_class=2,
                                               actions_per_method=4))
        assert (
            a.counts() != b.counts()
            or build_pag(a).pag.n_edges != build_pag(b).pag.n_edges
        )

    def test_generated_program_validates(self):
        # synthesize_program() builds with validate=True internally, but
        # be explicit: the output must be semantically well-formed.
        program = synthesize_program(SMALL)
        validate_program(program)

    def test_app_library_split(self):
        program = synthesize_program(SMALL)
        fams = {c.name: c.is_app for c in program.classes.values()}
        assert fams.get("App0") is True
        assert fams.get("Box0") is False
        assert any(n.startswith("Util") for n in fams)

    def test_queries_are_app_only(self):
        build = build_pag(synthesize_program(SMALL))
        for q in standard_workload(build.pag):
            assert build.pag.is_app(q.var)
            assert (build.pag.method_of(q.var) or "").startswith("App")

    def test_shuffle_is_deterministic_permutation(self):
        build = build_pag(synthesize_program(SMALL))
        plain = standard_workload(build.pag)
        s1 = standard_workload(build.pag, shuffle_seed=7)
        s2 = standard_workload(build.pag, shuffle_seed=7)
        assert s1 == s2
        assert s1 != plain
        assert sorted(q.var for q in s1) == sorted(q.var for q in plain)

    def test_queries_answerable_and_sound(self):
        # Every generated query completes with unlimited budget and is
        # bounded by the Andersen oracle.
        build = build_pag(synthesize_program(SMALL))
        oracle = AndersenSolver(build.pag).solve()
        eng = CFLEngine(build.pag, EngineConfig(budget=10**9))
        for q in standard_workload(build.pag)[:40]:
            res = eng.run_query(q)
            assert not res.exhausted
            assert res.objects <= oracle.points_to(q.var)

    def test_invalid_params_rejected(self):
        with pytest.raises(ReproError):
            SynthesisParams(containment_depth=0).validate()
        with pytest.raises(ReproError):
            SynthesisParams(n_boxes=0, n_vecs=0).validate()
        with pytest.raises(ReproError):
            SynthesisParams(n_app_classes=0).validate()

    def test_rec_hierarchy_levels(self):
        program = synthesize_program(SMALL)
        types = program.types
        # deepest Rec layer strictly deeper than the data leaves
        top = [n for n in types.subtypes("Object") if n.startswith("Rec2")]
        if top:
            assert types.level(top[0]) > types.level("Data0")


class TestSuite:
    def test_twenty_benchmarks(self):
        assert len(SUITE) == 20
        assert len(set(suite_names())) == 20

    def test_families(self):
        fams = {s.family for s in SUITE}
        assert fams == {"jvm98", "dacapo"}
        assert sum(s.family == "jvm98" for s in SUITE) == 10

    def test_load_benchmark_cached(self):
        a = load_benchmark("_200_check")
        b = load_benchmark("_200_check")
        assert a is b

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError):
            load_benchmark("quake")
        with pytest.raises(ReproError):
            spec_of("quake")

    def test_spec_helpers(self):
        spec = spec_of("_200_check")
        cfg = spec.engine_config()
        assert cfg.budget == spec.budget
        assert cfg.tau_f == spec.tau_f
        assert cfg.tau_u == spec.tau_u
        cfg2 = spec.engine_config(budget=99)
        assert cfg2.budget == 99
        assert len(spec.workload()) > 50

    def test_dacapo_more_queries_than_jvm98_small(self):
        # Table I shape: DaCapo entries issue more queries relative to
        # PAG size than small JVM98 entries.
        check = spec_of("_200_check")
        batik = spec_of("batik")
        assert len(batik.workload()) > len(check.workload())


class TestNarrowWorkloads:
    def test_queries_for_method(self):
        build = build_pag(synthesize_program(SMALL))
        qs = queries_for_method(build.pag, "App0.run0")
        assert qs
        assert all(build.pag.method_of(q.var) == "App0.run0" for q in qs)

    def test_queries_for_class(self):
        build = build_pag(synthesize_program(SMALL))
        qs = queries_for_class(build.pag, "App0")
        methods = {build.pag.method_of(q.var) for q in qs}
        assert all(m.startswith("App0.") for m in methods)
        assert len(qs) >= len(queries_for_method(build.pag, "App0.run0"))
