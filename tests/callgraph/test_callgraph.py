"""Unit tests for call-graph construction and recursion collapsing."""

from repro.callgraph import build_call_graph
from repro.ir import parse_program


def cg(src):
    return build_call_graph(parse_program(src))


class TestResolution:
    def test_simple_direct_call(self):
        g = cg(
            """
            class A { method f() { } }
            class M { static method main() { var a: A \n a = new A \n a.f() } }
            """
        )
        assert len(g) == 1
        (edge,) = g.edges
        assert (edge.caller, edge.callee) == ("M.main", "A.f")

    def test_virtual_call_fans_out(self):
        g = cg(
            """
            class Base { method f() { } }
            class S1 extends Base { method f() { } }
            class S2 extends Base { method f() { } }
            class M { static method main() {
                var b: Base \n b = new Base \n b.f()
            } }
            """
        )
        callees = {e.callee for e in g.callees_of("M.main")}
        assert callees == {"Base.f", "S1.f", "S2.f"}
        # all three edges share one call site
        site = g.callees_of("M.main")[0].site_id
        assert len(g.callees_at_site(site)) == 3

    def test_static_call_resolution(self):
        g = cg(
            """
            class Util { static method go() { } }
            class M { static method main() { Util::go() } }
            """
        )
        assert [e.callee for e in g.edges] == ["Util.go"]

    def test_callers_of(self):
        g = cg(
            """
            class A { method f() { } }
            class M { static method main() {
                var a: A \n a = new A \n a.f() \n a.f()
            } }
            """
        )
        assert len(g.callers_of("A.f")) == 2
        assert {e.site_id for e in g.callers_of("A.f")} == {0, 1}


class TestRecursion:
    def test_no_recursion(self):
        g = cg(
            """
            class A { method f() { } }
            class M { static method main() { var a: A \n a = new A \n a.f() } }
            """
        )
        assert g.recursive_sites() == frozenset()
        assert g.recursive_methods() == set()

    def test_self_recursion(self):
        g = cg(
            """
            class A { method f() { this.f() } }
            """
        )
        assert g.recursive_methods() == {"A.f"}
        assert len(g.recursive_sites()) == 1

    def test_mutual_recursion(self):
        g = cg(
            """
            class A {
              method f() { this.g() }
              method g() { this.f() }
            }
            class M { static method main() { var a: A \n a = new A \n a.f() } }
            """
        )
        assert g.recursive_methods() == {"A.f", "A.g"}
        # Only the two in-cycle sites collapse; main's entry call does not.
        rec = g.recursive_sites()
        assert len(rec) == 2
        entry = [e for e in g.callees_of("M.main")][0]
        assert entry.site_id not in rec

    def test_scc_of_groups_cycle(self):
        g = cg(
            """
            class A {
              method f() { this.g() }
              method g() { this.f() }
              method solo() { }
            }
            """
        )
        assert g.scc_of("A.f") == g.scc_of("A.g")
        assert g.scc_of("A.solo") != g.scc_of("A.f")

    def test_three_cycle(self):
        g = cg(
            """
            class A {
              method f() { this.g() }
              method g() { this.h() }
              method h() { this.f() }
            }
            """
        )
        assert g.recursive_methods() == {"A.f", "A.g", "A.h"}
        assert len(g.recursive_sites()) == 3

    def test_virtual_recursion_through_override(self):
        # main -> Base.f; Sub.f calls this.f() which (via CHA on Sub)
        # resolves back to Sub.f -> self-recursive.
        g = cg(
            """
            class Base { method f() { } }
            class Sub extends Base {
              method f() { this.f() }
            }
            """
        )
        assert "Sub.f" in g.recursive_methods()

    def test_sccs_cover_all_methods(self):
        g = cg(
            """
            class A { method f() { this.g() } method g() { this.f() } }
            class B { method h() { } }
            """
        )
        members = {m for comp in g.sccs() for m in comp}
        assert members == {"A.f", "A.g", "B.h"}
