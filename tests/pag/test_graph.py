"""Unit tests for the raw PAG data structure."""

import pytest

from repro.errors import PAGError
from repro.pag import PAG, EdgeKind, NodeKind
from repro.pag.dot import to_dot


@pytest.fixture
def pag():
    return PAG()


class TestNodes:
    def test_unfinished_node_exists(self, pag):
        assert pag.kind(pag.unfinished_node) is NodeKind.UNFINISHED
        assert pag.n_nodes == 0  # O is excluded from counts

    def test_add_local(self, pag):
        v = pag.add_local("x@M.m", "Object", "M.m")
        assert pag.kind(v) is NodeKind.LOCAL
        assert pag.is_variable(v)
        assert not pag.is_object(v)
        assert pag.name(v) == "x@M.m"
        assert pag.method_of(v) == "M.m"
        assert pag.node_id("x@M.m") == v

    def test_add_global(self, pag):
        g = pag.add_global("G", "Object")
        assert pag.kind(g) is NodeKind.GLOBAL
        assert pag.is_global(g)
        assert pag.is_variable(g)

    def test_add_obj(self, pag):
        o = pag.add_obj("o:M.m:0", "Vector")
        assert pag.is_object(o)
        assert not pag.is_variable(o)
        assert pag.type_name(o) == "Vector"

    def test_duplicate_name_rejected(self, pag):
        pag.add_local("x")
        with pytest.raises(PAGError):
            pag.add_local("x")

    def test_unknown_name_lookup(self, pag):
        with pytest.raises(PAGError):
            pag.node_id("ghost")
        assert not pag.has_node("ghost")

    def test_node_ids_excludes_O(self, pag):
        pag.add_local("x")
        pag.add_obj("o1")
        ids = list(pag.node_ids())
        assert pag.unfinished_node not in ids
        assert len(ids) == 2

    def test_app_locals(self, pag):
        a = pag.add_local("a", is_app=True)
        pag.add_local("lib", is_app=False)
        pag.add_global("G", is_app=True)  # globals are never 'app locals'
        assert pag.app_locals() == [a]

    def test_info_str(self, pag):
        v = pag.add_local("x")
        o = pag.add_obj("site0")
        assert str(pag.info(v)) == "x"
        assert str(pag.info(o)) == "o[site0]"
        assert str(pag.info(pag.unfinished_node)) == "O"


class TestEdges:
    def test_new_edge(self, pag):
        v, o = pag.add_local("v"), pag.add_obj("o1")
        pag.add_new_edge(v, o)
        assert pag.new_in[v] == [o]
        assert pag.new_out[o] == [v]
        assert pag.n_edges == 1

    def test_new_edge_type_checks(self, pag):
        v, o = pag.add_local("v"), pag.add_obj("o1")
        with pytest.raises(PAGError):
            pag.add_new_edge(o, o)  # dst must be a variable
        with pytest.raises(PAGError):
            pag.add_new_edge(v, v)  # src must be an object

    def test_assign_edge_both_directions(self, pag):
        a, b = pag.add_local("a"), pag.add_local("b")
        pag.add_assign_edge(a, b)
        assert pag.assign_in[a] == [b]
        assert pag.assign_out[b] == [a]

    def test_gassign_requires_global(self, pag):
        a, b = pag.add_local("a"), pag.add_local("b")
        with pytest.raises(PAGError):
            pag.add_gassign_edge(a, b)
        g = pag.add_global("G")
        pag.add_gassign_edge(g, a)
        pag.add_gassign_edge(b, g)
        assert pag.gassign_in[g] == [a]
        assert pag.gassign_in[b] == [g]

    def test_load_edge_indexes(self, pag):
        x, p = pag.add_local("x"), pag.add_local("p")
        pag.add_load_edge(x, p, "f")
        assert pag.load_in[x] == [(p, "f")]
        assert pag.load_out[p] == [(x, "f")]
        assert pag.loads_by_field["f"] == [(p, x)]

    def test_store_edge_indexes(self, pag):
        q, y = pag.add_local("q"), pag.add_local("y")
        pag.add_store_edge(q, "f", y)
        assert pag.store_in[q] == [(y, "f")]
        assert pag.store_out[y] == [(q, "f")]
        assert pag.stores_by_field["f"] == [(q, y)]

    def test_param_ret_edges(self, pag):
        f, a = pag.add_local("formal"), pag.add_local("actual")
        r, rv = pag.add_local("res"), pag.add_local("$ret")
        pag.add_param_edge(f, a, 7)
        pag.add_ret_edge(r, rv, 7)
        assert pag.param_in[f] == [(a, 7)]
        assert pag.param_out[a] == [(f, 7)]
        assert pag.ret_in[r] == [(rv, 7)]
        assert pag.ret_out[rv] == [(r, 7)]

    def test_duplicate_edges_deduplicated(self, pag):
        a, b = pag.add_local("a"), pag.add_local("b")
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(a, b)
        assert pag.n_edges == 1
        assert pag.assign_in[a] == [b]

    def test_same_pair_different_field_kept(self, pag):
        x, p = pag.add_local("x"), pag.add_local("p")
        pag.add_load_edge(x, p, "f")
        pag.add_load_edge(x, p, "g")
        assert pag.n_edges == 2

    def test_edges_iterator_roundtrip(self, pag):
        v, o = pag.add_local("v"), pag.add_obj("o1")
        q = pag.add_local("q")
        pag.add_new_edge(v, o)
        pag.add_store_edge(q, "f", v)
        kinds = sorted(e.kind for e in pag.edges())
        assert kinds == [EdgeKind.NEW, EdgeKind.STORE]
        assert pag.n_edges == 2

    def test_edge_str(self, pag):
        x, p = pag.add_local("x"), pag.add_local("p")
        pag.add_load_edge(x, p, "f")
        (edge,) = pag.edges()
        assert "load(f)" in str(edge)


class TestCycleCollapsing:
    def test_simple_assign_cycle_merged(self, pag):
        a, b, c = pag.add_local("a"), pag.add_local("b"), pag.add_local("c")
        o = pag.add_obj("o1")
        pag.add_new_edge(a, o)
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(b, a)
        pag.add_assign_edge(c, a)
        merged = pag.collapse_assign_sccs()
        assert merged == 1
        assert pag.rep(a) == pag.rep(b)
        assert pag.rep(c) != pag.rep(a)
        # The cycle's internal edges vanish; c <- rep(a) survives.
        rep = pag.rep(a)
        assert pag.assign_in.get(rep, []) == []
        assert pag.assign_in[c] == [rep]
        # new edge follows the representative
        assert pag.new_in[rep] == [o]

    def test_collapse_without_cycles_is_noop(self, pag):
        a, b = pag.add_local("a"), pag.add_local("b")
        pag.add_assign_edge(a, b)
        assert pag.collapse_assign_sccs() == 0
        assert pag.rep(a) == a

    def test_labeled_edges_remapped(self, pag):
        a, b = pag.add_local("a"), pag.add_local("b")
        x = pag.add_local("x")
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(b, a)
        pag.add_load_edge(x, a, "f")
        pag.add_store_edge(b, "f", x)
        pag.collapse_assign_sccs()
        rep = pag.rep(a)
        assert pag.load_in[x] == [(rep, "f")]
        assert pag.stores_by_field["f"] == [(rep, x)]

    def test_duplicate_edges_after_merge_deduplicated(self, pag):
        a, b, s = pag.add_local("a"), pag.add_local("b"), pag.add_local("s")
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(b, a)
        pag.add_assign_edge(a, s)
        pag.add_assign_edge(b, s)
        pag.collapse_assign_sccs()
        rep = pag.rep(a)
        assert pag.assign_in[rep] == [s]


class TestDot:
    def test_dot_contains_nodes_and_edges(self, pag):
        v, o = pag.add_local("v"), pag.add_obj("o1")
        pag.add_new_edge(v, o)
        text = to_dot(pag)
        assert "digraph pag {" in text
        assert '"v"' in text and '"o[o1]"' in text
        assert "new" in text

    def test_dot_subgraph_filter(self, pag):
        v, o = pag.add_local("v"), pag.add_obj("o1")
        w = pag.add_local("w")
        pag.add_new_edge(v, o)
        pag.add_assign_edge(w, v)
        text = to_dot(pag, nodes=[v, o])
        assert '"w"' not in text
        assert "assign" not in text
