"""Unit tests for IR -> PAG lowering (repro.pag.build)."""

import pytest

from repro.errors import PAGError
from repro.ir import parse_program
from repro.pag import build_pag
from repro.pag.edges import EdgeKind


class TestFig2Lowering:
    """Structure of the lowered Fig. 2 PAG (paper Fig. 2(b))."""

    def test_new_edges(self, fig2):
        b, n = fig2
        assert n["o_vec1"] in b.pag.new_in[n["v1"]]
        assert n["o_arr"] in b.pag.new_in[n["t_init"]]

    def test_store_elems_edge(self, fig2):
        # this.elems = t in <init>:  this_init <-st(elems)- t_init
        b, n = fig2
        assert (n["t_init"], "elems") in b.pag.store_in[n["this_init"]]

    def test_load_elems_edges(self, fig2):
        b, n = fig2
        assert (n["this_add"], "elems") in b.pag.load_in[n["t_add"]]
        assert (n["this_get"], "elems") in b.pag.load_in[n["t_get"]]

    def test_array_store_and_load(self, fig2):
        # t.arr = e in add; r = t.arr in get
        b, n = fig2
        assert (n["e_add"], "arr") in b.pag.store_in[n["t_add"]]
        assert (n["t_get"], "arr") in b.pag.load_in[n["r_get"]]

    def test_param_edges_with_sites(self, fig2):
        b, n = fig2
        # v1.add(n1) is call site 1: receiver and argument flow in.
        assert (n["v1"], 1) in b.pag.param_in[n["this_add"]]
        assert (n["n1"], 1) in b.pag.param_in[n["e_add"]]
        # v2.add(n2) is call site 4.
        assert (n["v2"], 4) in b.pag.param_in[n["this_add"]]
        assert (n["n2"], 4) in b.pag.param_in[n["e_add"]]

    def test_ret_edges_with_sites(self, fig2):
        b, n = fig2
        assert (n["ret_get"], 2) in b.pag.ret_in[n["s1"]]
        assert (n["ret_get"], 5) in b.pag.ret_in[n["s2"]]

    def test_return_lowered_to_assign_into_ret(self, fig2):
        b, n = fig2
        assert n["r_get"] in b.pag.assign_in[n["ret_get"]]

    def test_stores_by_field_index(self, fig2):
        b, n = fig2
        assert (n["this_init"], n["t_init"]) in b.pag.stores_by_field["elems"]
        assert (n["t_add"], n["e_add"]) in b.pag.stores_by_field["arr"]

    def test_app_locals_are_queryable(self, fig2):
        b, n = fig2
        app = set(b.pag.app_locals())
        assert n["s1"] in app and n["v1"] in app

    def test_counts_match_structure(self, fig2):
        b, _ = fig2
        # 5 objects; all reference locals incl this/$ret.
        assert sum(1 for _ in b.pag.objects()) == 5
        assert b.pag.n_edges > 10


class TestLoweringRules:
    def test_primitive_locals_skipped(self):
        p = parse_program(
            """
            class A { method m() { var x: int \n var y: Object \n y = new Object } }
            """
        )
        b = build_pag(p)
        assert not b.pag.has_node("x@A.m")
        assert b.pag.has_node("y@A.m")

    def test_primitive_field_store_skipped(self):
        p = parse_program(
            """
            class A { field n: int
              method m(v: int) { this.n = v }
            }
            """
        )
        b = build_pag(p)
        assert "n" not in b.pag.stores_by_field

    def test_global_assign_becomes_gassign(self):
        p = parse_program(
            """
            global G: Object
            class A { method m() { var x: Object \n x = new Object \n G = x } }
            """
        )
        b = build_pag(p)
        g, x = b.var("G"), b.var("x", "A.m")
        assert x in b.pag.gassign_in[g]

    def test_global_as_call_argument_normalised(self):
        # Fig. 1 requires param edges to connect locals only; a global
        # argument is routed through a synthetic local via assign_g.
        p = parse_program(
            """
            global G: Object
            class A { method f(x: Object) { } }
            class M { static method main() {
                var a: A \n a = new A \n a.f(G)
            } }
            """
        )
        b = build_pag(p)
        formal = b.var("x", "A.f")
        (actual, _site) = b.pag.param_in[formal][0]
        assert not b.pag.is_global(actual)
        g = b.var("G")
        assert g in b.pag.gassign_in[actual]

    def test_global_store_base_normalised(self):
        p = parse_program(
            """
            global G: A
            class A { field f: Object
              method m(v: Object) { G.f = v }
            }
            """
        )
        b = build_pag(p)
        (base, _value) = b.pag.stores_by_field["f"][0]
        assert not b.pag.is_global(base)

    def test_recursive_call_collapsed_to_assign(self):
        p = parse_program(
            """
            class A {
              method f(x: Object): Object {
                var y: Object
                y = this.f(x)
                return y
              }
            }
            """
        )
        b = build_pag(p)
        assert b.n_collapsed_recursive_sites == 1
        x = b.var("x", "A.f")
        # param edge demoted to assign: x <-assign- x (self), dropped or kept
        # as assign, but definitely no param edge.
        assert x not in b.pag.param_in or b.pag.param_in[x] == []

    def test_recursion_collapse_can_be_disabled(self):
        p = parse_program(
            """
            class A { method f(x: Object) { this.f(x) } }
            """
        )
        b = build_pag(p, collapse_recursion=False)
        assert b.n_collapsed_recursive_sites == 0
        x = b.var("x", "A.f")
        assert len(b.pag.param_in[x]) == 1

    def test_pt_cycle_collapse(self):
        p = parse_program(
            """
            class A { method m() {
                var a: Object \n var b: Object
                a = new Object \n a = b \n b = a
            } }
            """
        )
        b = build_pag(p)
        assert b.n_merged_assign_nodes == 1
        assert b.var("a", "A.m") == b.var("b", "A.m")

    def test_pt_cycle_collapse_can_be_disabled(self):
        p = parse_program(
            """
            class A { method m() {
                var a: Object \n var b: Object \n a = b \n b = a
            } }
            """
        )
        b = build_pag(p, collapse_pt_cycles=False)
        assert b.n_merged_assign_nodes == 0
        assert b.var("a", "A.m") != b.var("b", "A.m")

    def test_virtual_site_wires_every_callee(self):
        p = parse_program(
            """
            class Base { method f(x: Object) { } }
            class Sub extends Base { method f(x: Object) { } }
            class M { static method main() {
                var b: Base \n var o: Object
                b = new Base \n o = new Object \n b.f(o)
            } }
            """
        )
        b = build_pag(p)
        o = b.var("o", "M.main")
        base_x, sub_x = b.var("x", "Base.f"), b.var("x", "Sub.f")
        site = b.pag.param_in[base_x][0][1]
        assert (o, site) in b.pag.param_in[base_x]
        assert (o, site) in b.pag.param_in[sub_x]

    def test_unsealed_program_rejected(self):
        from repro.ir.builder import ProgramBuilder

        b = ProgramBuilder()
        b.clazz("A").method("m")
        with pytest.raises(PAGError):
            build_pag(b.program)

    def test_build_result_lookup_errors(self, fig2_build):
        with pytest.raises(PAGError):
            fig2_build.var("ghost", "Main.main")
        with pytest.raises(PAGError):
            fig2_build.obj("ghost")

    def test_void_call_produces_no_ret_edge(self):
        p = parse_program(
            """
            class A { method f() { } }
            class M { static method main() { var a: A \n a = new A \n a.f() } }
            """
        )
        b = build_pag(p)
        assert all(e.kind != EdgeKind.RET for e in b.pag.edges())
