"""Edge cases for the harness runner and result aggregation."""

import pytest

from repro.harness.runner import BenchmarkModes, run_benchmark_modes
from repro.runtime import CostModel
from repro.runtime.results import BatchResult


class TestRetRatio:
    def _modes_with(self, d_ets, dq_ets):
        base = run_benchmark_modes("_200_check")

        def fake(ets):
            b = BatchResult(
                mode="x", n_threads=16, executions=[], makespan=1.0,
                worker_busy=[],
            )
            # n_early_terminations is derived; monkey-wrap via executions
            # is heavy — patch the property through a subclass instead.
            class Fake(BatchResult):
                @property
                def n_early_terminations(self):
                    return ets

            return Fake(
                mode="x", n_threads=16, executions=[], makespan=1.0,
                worker_busy=[],
            )

        return BenchmarkModes(
            spec=base.spec, seq=base.seq, naive1=base.naive1,
            naive_t=base.naive_t, d_t=fake(d_ets), dq_t=fake(dq_ets),
            n_threads=16,
        )

    def test_zero_over_zero_is_one(self):
        assert self._modes_with(0, 0).ret_ratio == 1.0

    def test_nonzero_over_zero_is_inf(self):
        assert self._modes_with(0, 5).ret_ratio == float("inf")

    def test_plain_ratio(self):
        assert self._modes_with(4, 6).ret_ratio == pytest.approx(1.5)


class TestRunnerCaching:
    def test_custom_cost_model_bypasses_cache(self):
        a = run_benchmark_modes("_200_check")
        b = run_benchmark_modes("_200_check", cost_model=CostModel(w_query=1))
        assert a is not b
        c = run_benchmark_modes("_200_check")
        assert a is c

    def test_no_cache_flag(self):
        a = run_benchmark_modes("_200_check")
        b = run_benchmark_modes("_200_check", use_cache=False)
        assert a is not b


class TestBatchResultAggregates:
    def test_empty_batch_result(self):
        empty = BatchResult(
            mode="seq", n_threads=1, executions=[], makespan=0.0, worker_busy=[]
        )
        assert empty.total_steps == 0
        assert empty.saved_ratio == 0.0
        # An empty batch did no work: utilisation is 0, not a perfect 1.
        assert empty.utilisation == 0.0
        assert empty.allocation_proxy == 0
        assert empty.points_to_map() == {}

    def test_speedup_of_zero_makespan(self):
        a = BatchResult(mode="x", n_threads=1, executions=[], makespan=10.0,
                        worker_busy=[])
        b = BatchResult(mode="y", n_threads=1, executions=[], makespan=0.0,
                        worker_busy=[])
        assert b.speedup_over(a) == float("inf")

    def test_repr_is_informative(self):
        r = BatchResult(mode="DQ", n_threads=16, executions=[], makespan=5.0,
                        worker_busy=[])
        text = repr(r)
        assert "DQ" in text and "t=16" in text
