"""Tests for the experiment harness (on a restricted benchmark set —
the full regenerations live in benchmarks/)."""

import pytest

from repro.harness import fig6, fig7, fig8, memory, table1, table2
from repro.harness.report import ascii_bars, ascii_histogram, ascii_table, to_csv
from repro.harness.run_all import main
from repro.harness.runner import run_benchmark_modes

SMALL = ["_200_check"]


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(("a", "bb"), [("x", 1), ("long", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "22.5" in lines[3]

    def test_ascii_table_nan(self):
        text = ascii_table(("a", "v"), [("x", float("nan"))])
        assert "-" in text.splitlines()[-1]

    def test_ascii_bars(self):
        text = ascii_bars(["one", "two"], [1.0, 2.0])
        assert text.count("|") == 4
        assert "2.0x" in text

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == "(no data)"

    def test_ascii_histogram(self):
        text = ascii_histogram(["b0", "b1"], {"s": [1, 3]})
        assert "b0" in text and "b1" in text

    def test_to_csv(self):
        text = to_csv(("a", "b"), [(1, 2)])
        assert text.splitlines() == ["a,b", "1,2"]


class TestRunner:
    def test_modes_cached(self):
        a = run_benchmark_modes("_200_check")
        b = run_benchmark_modes("_200_check")
        assert a is b

    def test_modes_complete(self):
        m = run_benchmark_modes("_200_check")
        n = m.seq.n_queries
        assert n > 0
        for batch in (m.naive1, m.naive_t, m.d_t, m.dq_t):
            assert batch.n_queries == n

    def test_all_modes_agree_on_answers(self):
        m = run_benchmark_modes("_200_check")
        base = m.seq.points_to_map()
        for batch in (m.naive1, m.naive_t, m.d_t, m.dq_t):
            other = batch.points_to_map()
            agree = sum(other[k] == base[k] for k in base)
            # budget/ET interactions may flip a few exhausted queries'
            # partial answers; completed answers must dominate.
            assert agree >= 0.9 * len(base)


class TestTable1:
    def test_rows_and_average(self):
        rows = table1.run(SMALL)
        assert len(rows) == 1
        row = rows[0]
        assert row.n_queries > 0
        assert row.t_seq > 0
        assert row.total_steps > 0
        text = table1.render(rows)
        assert "_200_check" in text
        assert "TABLE I" in text

    def test_csv(self):
        rows = table1.run(SMALL)
        csv_text = table1.csv(rows)
        assert csv_text.splitlines()[0].startswith("Benchmark")


class TestTable2:
    def test_measured_row_properties(self):
        rows = table2.run()
        assert len(rows) == 8
        ours = rows[-1]
        assert ours.analysis == "this paper"
        assert ours.on_demand == "yes"
        assert ours.context == "yes"
        assert ours.field == "yes"
        assert ours.flow == "no"

    def test_render_includes_footnote(self):
        text = table2.render(table2.run())
        assert "partial flow-sensitivity" in text


class TestFigures:
    def test_fig6(self):
        rows = fig6.run(SMALL)
        assert rows[0].naive1 == pytest.approx(1.0, abs=0.35)
        assert rows[0].naive_t > 2
        text = fig6.render(rows)
        assert "AVERAGE" not in text  # single row: no average appended
        text2 = fig6.render(fig6.run(["_200_check", "_202_jess"]))
        assert "AVERAGE" in text2

    def test_fig7(self):
        result = fig7.run(SMALL)
        assert len(result.buckets) == fig7.N_BUCKETS
        assert sum(result.finished) >= sum(result.finished_opt) >= 0
        assert "Fig. 7" in fig7.render(result)

    def test_fig8(self):
        rows = fig8.run(SMALL)
        sp = rows[0].speedups
        assert set(sp) == {1, 2, 4, 8, 16}
        assert sp[8] > sp[2]
        assert "Fig. 8" in fig8.render(rows)

    def test_memory(self):
        rows = memory.run(SMALL)
        assert rows[0].seq_peak > 0
        assert rows[0].ratio < 1.5
        assert "IV-D5" in memory.render(rows)


class TestCLI:
    def test_table2_cli(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out

    def test_fig6_cli_with_restriction(self, capsys):
        assert main(["fig6", "--benchmarks", "_200_check"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--benchmarks", "quake3"])

    def test_csv_export(self, tmp_path, capsys):
        assert main(["table1", "--benchmarks", "_200_check", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
