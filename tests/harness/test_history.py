"""Tests for the bench history and the perf-regression gate
(repro.harness.history) against synthetic bench payloads.
"""

import json

import pytest

from repro.errors import InputError
from repro.harness import history


def make_payload(speedups=None, walls=None, seq_wall=1.0, host_cpus=8,
                 effective=8, platform_name="linux-x86_64"):
    """A minimal bench payload in the BENCH_parallel.json schema."""
    speedups = speedups if speedups is not None else {"1": 1.0, "2": 1.8}
    walls = walls if walls is not None else {
        w: seq_wall / s for w, s in speedups.items()
    }
    return {
        "meta": {
            "timestamp": "2026-08-05T00:00:00+0000",
            "mode": "D",
            "backend": "mp",
            "smoke": True,
            "host_cpus": host_cpus,
            "host_cpus_effective": effective,
            "cpu_oversubscribed": False,
            "python": "3.11.7",
            "platform": platform_name,
        },
        "suites": [
            {
                "name": "_200_check",
                "seq_wall_s": seq_wall,
                "mp_wall_s": dict(walls),
                "speedup": dict(speedups),
            }
        ],
    }


class TestHistoryRecords:
    def test_one_record_per_suite_and_worker_count(self):
        records = history.history_records(make_payload())
        assert len(records) == 2
        assert [r["workers"] for r in records] == [1, 2]
        for r in records:
            assert r["suite"] == "_200_check"
            assert r["host_cpus"] == 8
            assert r["host_cpus_effective"] == 8
            assert r["cpu_oversubscribed"] is False
            assert r["seq_wall_s"] == 1.0
            assert r["speedup"] is not None

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        n = history.append_history(make_payload(), path)
        assert n == 2
        history.append_history(make_payload(), path)  # appends, not truncates
        loaded = history.load_history(path)
        assert len(loaded) == 4
        for line in path.read_text().splitlines():
            json.loads(line)  # every line parses standalone

    def test_load_history_missing_file(self, tmp_path):
        assert history.load_history(tmp_path / "absent.jsonl") == []


class TestLoadBaseline:
    def test_missing_file_raises_input_error(self, tmp_path):
        with pytest.raises(InputError, match="not found"):
            history.load_baseline(tmp_path / "absent.json")

    def test_malformed_json_raises_input_error(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(InputError, match="not valid JSON"):
            history.load_baseline(p)

    def test_wrong_schema_raises_input_error(self, tmp_path):
        p = tmp_path / "odd.json"
        p.write_text(json.dumps({"something": "else"}))
        with pytest.raises(InputError, match="suites"):
            history.load_baseline(p)


class TestCompareGate:
    def test_identical_payloads_pass(self):
        report = history.compare(make_payload(), make_payload())
        assert report["ok"] is True
        assert report["same_host"] is True
        assert report["regressions"] == []

    def test_inflated_baseline_fails_on_any_host(self):
        # A baseline claiming speedups no honest run reproduces: the
        # speedup metric gates regardless of host fingerprint.
        current = make_payload(speedups={"1": 1.0, "2": 1.5})
        inflated = make_payload(speedups={"1": 3.0, "2": 9.0})
        report = history.compare(current, inflated)
        assert report["ok"] is False
        assert all(r["metric"] == "speedup" for r in report["regressions"])
        # Same verdict when the host differs.
        inflated["meta"]["host_cpus"] = 64
        report = history.compare(current, inflated)
        assert report["ok"] is False and report["same_host"] is False

    def test_wall_gates_only_on_same_host(self):
        # 3x slower in wall seconds, identical speedups.
        base = make_payload(walls={"1": 10.0, "2": 5.0},
                            speedups={"1": 1.0, "2": 2.0}, seq_wall=10.0)
        slow = make_payload(walls={"1": 30.0, "2": 15.0},
                            speedups={"1": 1.0, "2": 2.0}, seq_wall=30.0)
        same = history.compare(slow, base)
        assert same["ok"] is False
        assert {r["metric"] for r in same["regressions"]} <= {"wall", "seq_wall"}
        slow_elsewhere = make_payload(walls={"1": 30.0, "2": 15.0},
                                      speedups={"1": 1.0, "2": 2.0},
                                      seq_wall=30.0, host_cpus=64, effective=64)
        other = history.compare(slow_elsewhere, base)
        assert other["same_host"] is False
        assert other["ok"] is True  # wall deltas informational off-host

    def test_tiny_walls_never_gate(self):
        # Sub-min_wall_s measurements are noise-dominated: a 2x "wall
        # regression" on a 20ms smoke suite must not trip the gate.
        base = make_payload(walls={"1": 0.020, "2": 0.015},
                            speedups={"1": 1.0, "2": 1.3}, seq_wall=0.020)
        noisy = make_payload(walls={"1": 0.040, "2": 0.030},
                             speedups={"1": 1.0, "2": 1.3}, seq_wall=0.040)
        report = history.compare(noisy, base)
        assert report["ok"] is True
        walls = [c for c in report["comparisons"] if c["metric"] != "speedup"]
        assert walls and all(not c["gates"] for c in walls)

    def test_improvements_never_gate(self):
        base = make_payload(speedups={"1": 1.0, "2": 1.5})
        faster = make_payload(speedups={"1": 2.0, "2": 4.0})
        assert history.compare(faster, base)["ok"] is True

    def test_threshold_is_configurable(self):
        base = make_payload(speedups={"1": 1.0, "2": 2.0})
        current = make_payload(speedups={"1": 0.9, "2": 1.8})  # -10%
        assert history.compare(current, base, threshold=0.25)["ok"] is True
        assert history.compare(current, base, threshold=0.05)["ok"] is False
        with pytest.raises(ValueError):
            history.compare(current, base, threshold=0.0)

    def test_missing_suite_reported_not_fatal(self):
        current = make_payload()
        current["suites"].append({
            "name": "_brand_new", "seq_wall_s": 1.0,
            "mp_wall_s": {"1": 1.0}, "speedup": {"1": 1.0},
        })
        report = history.compare(current, make_payload())
        assert report["missing_suites"] == ["_brand_new"]
        assert report["ok"] is True


class TestRenderCompare:
    def test_render_mentions_verdict_and_flags(self):
        current = make_payload(speedups={"1": 1.0, "2": 1.0})
        inflated = make_payload(speedups={"1": 5.0, "2": 5.0})
        report = history.compare(current, inflated)
        text = history.render_compare(report)
        assert "REGRESSION" in text
        assert "failing" in text
        ok_text = history.render_compare(
            history.compare(current, make_payload(speedups={"1": 1.0,
                                                            "2": 1.0}))
        )
        assert "ok" in ok_text
