"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main

JAVA_SRC = """
class Box {
  field val: Object
  method set(v: Object) { this.val = v }
  method get(): Object { var r: Object \n r = this.val \n return r }
}
class Main {
  static method main() {
    var b: Box
    var o: Object
    var x: Object
    b = new Box
    o = new Object
    b.set(o)
    x = b.get()
  }
}
"""

C_SRC = """
func main() {
  var p, q, v
  v = alloc()
  p = &v
  q = *p
}
"""


@pytest.fixture
def java_file(tmp_path):
    f = tmp_path / "prog.mj"
    f.write_text(JAVA_SRC)
    return f


@pytest.fixture
def c_file(tmp_path):
    f = tmp_path / "prog.c"
    f.write_text(C_SRC)
    return f


class TestAnalyze:
    def test_single_query(self, java_file, capsys):
        assert main(["analyze", str(java_file), "--query", "x@Main.main"]) == 0
        out = capsys.readouterr().out
        assert "pts(x@Main.main)" in out
        assert "o:Main.main:1" in out

    def test_default_all_app_locals(self, java_file, capsys):
        assert main(["analyze", str(java_file)]) == 0
        out = capsys.readouterr().out
        assert out.count("pts(") >= 3

    def test_context_insensitive_flag(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main",
             "--context-insensitive"]
        ) == 0
        assert "o:Main.main:1" in capsys.readouterr().out

    def test_field_based_flag(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--field-based"]
        ) == 0

    def test_explain(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "flowsTo" in out
        assert "[certified]" in out

    def test_alias_query(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--alias", "b@Main.main", "x@Main.main"]
        ) == 0
        assert "may_alias" in capsys.readouterr().out

    def test_c_frontend_by_suffix(self, c_file, capsys):
        assert main(["analyze", str(c_file), "--query", "q@main"]) == 0
        out = capsys.readouterr().out
        assert "heap:main:0" in out

    def test_ctx_argument(self, java_file, capsys):
        # context of call site 1 (b.get() is site 1)
        assert main(
            ["analyze", str(java_file), "--query", "r@Box.get", "--ctx", "1"]
        ) == 0
        assert "pts(r@Box.get)" in capsys.readouterr().out

    def test_bad_ctx_reports_error(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--ctx", "zap"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_variable_reports_error(self, java_file, capsys):
        assert main(["analyze", str(java_file), "--query", "ghost@No.where"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        # Unreadable input is a usage problem, not an analysis failure:
        # exit code 2, clean message, no traceback.
        assert main(["analyze", str(tmp_path / "nope.mj")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "not found" in err

    def test_directory_input(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_binary_input(self, tmp_path, capsys):
        blob = tmp_path / "blob.mj"
        blob.write_bytes(b"\xff\xfe\x00\x80garbage")
        assert main(["analyze", str(blob)]) == 2
        assert "not valid text" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.mj"
        bad.write_text("klass A { }")
        assert main(["analyze", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


BUGGY_SRC = """
class Base {
  field f: Object
}
class Sub extends Base { }
class App {
  static method main() {
    var b: Base
    var s: Sub
    b = new Base
    s = (Sub) b                 // unsafe downcast
  }
  static method broken() {
    var ghost: Base
    var got: Object
    got = ghost.f               // null dereference
  }
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    f = tmp_path / "buggy.mj"
    f.write_text(BUGGY_SRC)
    return f


class TestCheck:
    def test_clean_program_exits_zero(self, java_file, capsys):
        assert main(["check", str(java_file)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_buggy_program_exits_one(self, buggy_file, capsys):
        assert main(["check", str(buggy_file)]) == 1
        out = capsys.readouterr().out
        assert "null-deref" in out
        assert "downcast" in out

    def test_severity_threshold(self, buggy_file, capsys):
        # Only the null-deref is an ERROR; raising the bar above the
        # downcast WARNING still trips on it...
        assert main(["check", str(buggy_file), "--severity", "error"]) == 1
        capsys.readouterr()

    def test_checker_subset(self, buggy_file, capsys):
        # ...and restricting to the downcast checker with an error bar
        # leaves only warnings: exit 0.
        assert main(
            ["check", str(buggy_file), "--checker", "downcast",
             "--severity", "error"]
        ) == 0
        out = capsys.readouterr().out
        assert "downcast" in out
        assert "null-deref" not in out

    def test_json_format(self, buggy_file, capsys):
        assert main(["check", str(buggy_file), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"]["name"] == "repro-check"
        assert doc["queries"]["unique"] <= doc["queries"]["demanded"]
        assert any(f["checker"] == "null-deref" for f in doc["findings"])

    def test_sarif_format(self, buggy_file, capsys):
        assert main(["check", str(buggy_file), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert {r["ruleId"] for r in run["results"]} >= {"null-deref", "downcast"}

    def test_unknown_checker_errors(self, java_file, capsys):
        assert main(["check", str(java_file), "--checker", "no-such"]) == 1
        assert "unknown checker" in capsys.readouterr().err

    def test_c_input_rejected(self, c_file, capsys):
        assert main(["check", str(c_file)]) == 1
        assert "mini-Java" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "gone.mj")]) == 2


class TestBatchAndGraph:
    def test_batch(self, java_file, capsys):
        assert main(["batch", str(java_file), "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "SeqCFL" in out
        assert "DQ x4" in out

    def test_graph(self, java_file, capsys):
        assert main(["graph", str(java_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "new" in out

    def test_language_override(self, tmp_path, capsys):
        f = tmp_path / "prog.txt"
        f.write_text(C_SRC)
        assert main(["analyze", str(f), "--language", "c", "--query", "q@main"]) == 0

    def test_bench_subcommand(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "TABLE II" in capsys.readouterr().out


class TestBatchTelemetry:
    def test_events_jsonl_on_each_backend(self, java_file, tmp_path, capsys):
        for backend in ("sim", "threads", "mp"):
            events = tmp_path / f"{backend}.jsonl"
            assert main([
                "batch", str(java_file), "--backend", backend,
                "--events", str(events),
            ]) == 0
            parsed = [json.loads(line)
                      for line in events.read_text().splitlines()]
            assert parsed, f"no events on backend {backend}"
            kinds = {p["kind"] for p in parsed}
            assert {"batch_start", "done", "batch_end"} <= kinds
            if backend == "mp":
                assert {"dispatch", "heartbeat"} <= kinds
            assert "[events" in capsys.readouterr().out

    def test_progress_renders_to_stderr(self, java_file, capsys):
        assert main([
            "batch", str(java_file), "--backend", "threads", "--progress",
        ]) == 0
        assert "progress" in capsys.readouterr().err


class TestBenchHistoryAndGate:
    def _bench(self, tmp_path, *extra):
        out = tmp_path / "out.json"
        hist = tmp_path / "hist.jsonl"
        code = main([
            "bench", "--smoke", "--suite", "_200_check", "--workers", "1",
            "--no-verify", "--out", str(out), "--history", str(hist),
            *extra,
        ])
        return code, out, hist

    def test_history_appended_and_events_written(self, tmp_path, capsys):
        events = tmp_path / "e.jsonl"
        code, out, hist = self._bench(tmp_path, "--events", str(events))
        assert code == 0
        assert "[history" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in hist.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["suite"] == "_200_check"
        assert records[0]["host_cpus_effective"] >= 1
        kinds = {json.loads(line)["kind"]
                 for line in events.read_text().splitlines()}
        assert {"dispatch", "done", "heartbeat"} <= kinds

    def test_compare_self_passes_inflated_fails(self, tmp_path, capsys):
        code, out, _hist = self._bench(tmp_path)
        assert code == 0
        baseline = json.loads(out.read_text())
        # Same payload as baseline: no regression.
        code, _, _ = self._bench(tmp_path, "--compare", str(out))
        assert code == 0
        # A baseline with impossible speedups: the gate trips (exit 3).
        for suite in baseline["suites"]:
            suite["speedup"] = {w: s * 10 for w, s in suite["speedup"].items()}
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(baseline))
        code, _, _ = self._bench(tmp_path, "--compare", str(inflated))
        assert code == 3
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression" in captured.err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        code, _, _ = self._bench(
            tmp_path, "--compare", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestSnapshotCommand:
    def _save(self, java_file, tmp_path, *extra):
        snap = tmp_path / "prog.snap"
        code = main(["snapshot", "save", str(java_file),
                     "--out", str(snap), *extra])
        return code, snap

    def test_save_then_load(self, java_file, tmp_path, capsys):
        code, snap = self._save(java_file, tmp_path)
        assert code == 0
        assert snap.exists()
        assert "[snapshot" in capsys.readouterr().out
        code = main(["snapshot", "load", str(snap)])
        assert code == 0
        out = capsys.readouterr().out
        assert "format v1" in out
        assert "grammar flowsto" in out

    def test_load_verifies_against_program(self, java_file, tmp_path, capsys):
        _, snap = self._save(java_file, tmp_path)
        capsys.readouterr()
        code = main(["snapshot", "load", str(snap),
                     "--file", str(java_file), "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches program" in out
        assert "[verify ok" in out
        assert "0 divergent answers" in out

    def test_stale_snapshot_exits_two(self, java_file, tmp_path, capsys):
        _, snap = self._save(java_file, tmp_path)
        other = tmp_path / "other.mj"
        other.write_text(JAVA_SRC.replace("x = b.get()",
                                          "x = b.get()\n    b.set(x)"))
        code = main(["snapshot", "load", str(snap), "--file", str(other)])
        assert code == 2
        assert "stale snapshot" in capsys.readouterr().err

    def test_corrupt_snapshot_exits_two(self, tmp_path, capsys):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"not a snapshot at all")
        code = main(["snapshot", "load", str(junk)])
        assert code == 2
        assert "bad magic" in capsys.readouterr().err

    def test_verify_without_file_is_an_error(self, java_file, tmp_path):
        _, snap = self._save(java_file, tmp_path)
        code = main(["snapshot", "load", str(snap), "--verify"])
        assert code == 1

    def test_default_out_is_snap_suffix(self, java_file, capsys):
        code = main(["snapshot", "save", str(java_file)])
        assert code == 0
        assert java_file.with_suffix(".snap").exists()


class TestBenchWarm:
    def test_warm_axis_gates_and_renders(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        code = main([
            "bench", "--smoke", "--suite", "_200_check", "--workers", "1",
            "--no-verify", "--warm", "--no-history", "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "WARM START" in stdout
        payload = json.loads(out.read_text())
        assert payload["warm_ok"] is True
        (axis,) = payload["warm_axis"]
        assert axis["identical"] is True
        assert axis["entries_loaded"] > 0
        assert axis["warm_jmp_taken"] > 0
