"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

JAVA_SRC = """
class Box {
  field val: Object
  method set(v: Object) { this.val = v }
  method get(): Object { var r: Object \n r = this.val \n return r }
}
class Main {
  static method main() {
    var b: Box
    var o: Object
    var x: Object
    b = new Box
    o = new Object
    b.set(o)
    x = b.get()
  }
}
"""

C_SRC = """
func main() {
  var p, q, v
  v = alloc()
  p = &v
  q = *p
}
"""


@pytest.fixture
def java_file(tmp_path):
    f = tmp_path / "prog.mj"
    f.write_text(JAVA_SRC)
    return f


@pytest.fixture
def c_file(tmp_path):
    f = tmp_path / "prog.c"
    f.write_text(C_SRC)
    return f


class TestAnalyze:
    def test_single_query(self, java_file, capsys):
        assert main(["analyze", str(java_file), "--query", "x@Main.main"]) == 0
        out = capsys.readouterr().out
        assert "pts(x@Main.main)" in out
        assert "o:Main.main:1" in out

    def test_default_all_app_locals(self, java_file, capsys):
        assert main(["analyze", str(java_file)]) == 0
        out = capsys.readouterr().out
        assert out.count("pts(") >= 3

    def test_context_insensitive_flag(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main",
             "--context-insensitive"]
        ) == 0
        assert "o:Main.main:1" in capsys.readouterr().out

    def test_field_based_flag(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--field-based"]
        ) == 0

    def test_explain(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "flowsTo" in out
        assert "[certified]" in out

    def test_alias_query(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--alias", "b@Main.main", "x@Main.main"]
        ) == 0
        assert "may_alias" in capsys.readouterr().out

    def test_c_frontend_by_suffix(self, c_file, capsys):
        assert main(["analyze", str(c_file), "--query", "q@main"]) == 0
        out = capsys.readouterr().out
        assert "heap:main:0" in out

    def test_ctx_argument(self, java_file, capsys):
        # context of call site 1 (b.get() is site 1)
        assert main(
            ["analyze", str(java_file), "--query", "r@Box.get", "--ctx", "1"]
        ) == 0
        assert "pts(r@Box.get)" in capsys.readouterr().out

    def test_bad_ctx_reports_error(self, java_file, capsys):
        assert main(
            ["analyze", str(java_file), "--query", "x@Main.main", "--ctx", "zap"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_variable_reports_error(self, java_file, capsys):
        assert main(["analyze", str(java_file), "--query", "ghost@No.where"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.mj")]) == 1

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.mj"
        bad.write_text("klass A { }")
        assert main(["analyze", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestBatchAndGraph:
    def test_batch(self, java_file, capsys):
        assert main(["batch", str(java_file), "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "SeqCFL" in out
        assert "DQ x4" in out

    def test_graph(self, java_file, capsys):
        assert main(["graph", str(java_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "new" in out

    def test_language_override(self, tmp_path, capsys):
        f = tmp_path / "prog.txt"
        f.write_text(C_SRC)
        assert main(["analyze", str(f), "--language", "c", "--query", "q@main"]) == 0

    def test_bench_subcommand(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "TABLE II" in capsys.readouterr().out
