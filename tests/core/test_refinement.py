"""Tests for field-based matching and the refinement driver."""

import pytest

from repro.core import CFLEngine, EngineConfig
from repro.core.refinement import RefinementDriver
from repro.errors import AnalysisError
from repro.ir import parse_program
from repro.pag import build_pag


class TestFieldMode:
    def test_invalid_mode_rejected(self, fig2):
        b, _ = fig2
        with pytest.raises(AnalysisError):
            CFLEngine(b.pag, EngineConfig(field_mode="fuzzy"))

    def test_match_over_approximates(self, fig2):
        b, _ = fig2
        precise = CFLEngine(b.pag)
        coarse = CFLEngine(b.pag, EngineConfig(field_mode="match"))
        for var in b.pag.app_locals():
            p = precise.points_to(var).objects
            c = coarse.points_to(var).objects
            assert p <= c, b.pag.name(var)

    def test_match_conflates_fig2_vectors(self, fig2):
        # field-based matching cannot separate v1's and v2's elements
        b, n = fig2
        coarse = CFLEngine(b.pag, EngineConfig(field_mode="match"))
        assert coarse.points_to(n["s1"]).objects == {n["o_n1"], n["o_n2"]}

    def test_match_is_cheaper(self, fig2):
        b, n = fig2
        precise = CFLEngine(b.pag)
        coarse = CFLEngine(b.pag, EngineConfig(field_mode="match"))
        assert (
            coarse.points_to(n["s1"]).costs.work
            <= precise.points_to(n["s1"]).costs.work
        )

    def test_retired_field_sensitive_flag_is_a_type_error(self, fig2):
        # The PR-4 boolean shim is gone; field_mode is the only spelling.
        with pytest.raises(TypeError, match="field_sensitive"):
            EngineConfig(field_sensitive=False)

    def test_match_over_approximates_generated(self):
        from repro.benchgen import SynthesisParams, synthesize_program

        build = build_pag(
            synthesize_program(SynthesisParams(seed=3, n_app_classes=2))
        )
        precise = CFLEngine(build.pag, EngineConfig(budget=10**9))
        coarse = CFLEngine(
            build.pag, EngineConfig(budget=10**9, field_mode="match")
        )
        for var in build.pag.app_locals()[:30]:
            assert precise.points_to(var).objects <= coarse.points_to(var).objects


class TestRefinementDriver:
    def test_empty_answer_skips_refinement(self):
        build = build_pag(
            parse_program(
                "class M { static method main() { var a: Object } }"
            )
        )
        driver = RefinementDriver(build.pag)
        ans = driver.points_to(build.var("a", "M.main"))
        assert not ans.refined
        assert ans.result.objects == frozenset()

    def test_unchecked_nonempty_refines(self, fig2):
        b, n = fig2
        driver = RefinementDriver(b.pag)
        ans = driver.points_to(n["s1"])
        assert ans.refined
        assert ans.result.objects == {n["o_n1"]}
        assert ans.match_result.objects >= ans.result.objects

    def test_check_satisfied_by_coarse_skips_refinement(self, fig2):
        # Client: "may s1 point only to Main-allocated objects?" — true
        # even under the over-approximation, so no refinement runs.
        b, n = fig2
        driver = RefinementDriver(b.pag)
        main_objs = {n["o_n1"], n["o_n2"], n["o_vec1"], n["o_vec2"]}
        ans = driver.points_to(
            n["s1"], check=lambda r: r.objects <= main_objs
        )
        assert not ans.refined
        assert ans.satisfied is True

    def test_check_failing_coarse_triggers_refinement(self, fig2):
        # Client: "does s1 point only to n1's object?" — the coarse
        # stage cannot prove it (it conflates n2), the precise one can.
        b, n = fig2
        driver = RefinementDriver(b.pag)
        ans = driver.points_to(n["s1"], check=lambda r: r.objects == {n["o_n1"]})
        assert ans.refined
        assert ans.satisfied is True
        assert ans.match_result.objects == {n["o_n1"], n["o_n2"]}

    def test_check_unsatisfiable(self, fig2):
        b, n = fig2
        driver = RefinementDriver(b.pag)
        ans = driver.points_to(n["s1"], check=lambda r: not r.objects)
        assert ans.refined
        assert ans.satisfied is False

    def test_refinement_rate(self, fig2):
        b, n = fig2
        driver = RefinementDriver(b.pag)
        driver.points_to(n["s1"])                       # refines
        driver.points_to(n["v1"], check=lambda r: True)  # satisfied coarse
        assert driver.n_queries == 2
        assert driver.n_refined == 1
        assert driver.refinement_rate == pytest.approx(0.5)
