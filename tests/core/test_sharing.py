"""Tests for the data-sharing scheme (Algorithm 2 / Section III-B)."""

import pytest

from repro.core import CFLEngine, EngineConfig, JumpMap, LayeredJumpMap, Query
from repro.core.engine import POINTS_TO
from repro.pag.extended import FinishedJump


def sharing_engine(pag, tau_f=0, tau_u=0, budget=75_000, **kw):
    cfg = EngineConfig(budget=budget, tau_f=tau_f, tau_u=tau_u, **kw)
    return CFLEngine(pag, cfg, jumps=JumpMap())


class TestShortcutRecording:
    def test_jumps_recorded_for_heap_rounds(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag)
        eng.points_to(n["s1"])
        assert eng.jumps.n_jumps > 0
        assert eng.jumps.n_finished_edges > 0

    def test_no_jumps_without_heap_access(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag)
        eng.points_to(n["v1"])  # v1 = new Vector — no field traffic
        assert eng.jumps.n_jumps == 0

    def test_tau_f_suppresses_cheap_rounds(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag, tau_f=10**9)
        eng.points_to(n["s1"])
        assert eng.jumps.n_finished_edges == 0

    def test_results_identical_with_sharing(self, fig2):
        b, n = fig2
        base = CFLEngine(b.pag)
        shared = sharing_engine(b.pag)
        queries = [Query(v) for v in b.pag.app_locals()]
        for query in queries:
            expect = base.run_query(query)
            got = shared.run_query(query)
            assert got.points_to == expect.points_to, b.pag.name(query.var)
            assert got.exhausted == expect.exhausted

    def test_second_query_takes_shortcuts(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag)
        first = eng.points_to(n["s1"])
        second = eng.points_to(n["s1"])
        assert second.points_to == first.points_to
        assert second.costs.jmp_taken > 0
        assert second.costs.saved > 0
        # Actual traversal work shrinks even though charged steps match
        # the budget semantics.
        assert second.costs.work < first.costs.work

    def test_sibling_query_benefits(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag)
        eng.points_to(n["s1"])
        res = eng.points_to(n["s2"])
        # s2's traversal reuses alias rounds shared with s1 (e.g. at
        # r_get/t_get within matching contexts) — the jump map was
        # consulted at least once.
        assert res.costs.jmp_lookups > 0

    def test_saved_steps_counted(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag)
        eng.points_to(n["s1"])
        res = eng.points_to(n["s1"])
        assert res.costs.saved > 0
        assert res.costs.steps >= res.costs.work


class TestUnfinishedJumps:
    def test_unfinished_recorded_on_exhaustion(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag, budget=10)
        res = eng.points_to(n["s1"])
        assert res.exhausted
        assert eng.jumps.n_unfinished_edges > 0

    def test_tau_u_suppresses_unfinished(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag, budget=10, tau_u=10**9)
        eng.points_to(n["s1"])
        assert eng.jumps.n_unfinished_edges == 0

    def test_early_termination_on_unfinished_marker(self, fig2):
        b, n = fig2
        eng = sharing_engine(b.pag, budget=10)
        eng.points_to(n["s1"])  # plants unfinished markers
        res = eng.points_to(n["s1"])
        assert res.exhausted
        assert res.costs.early_terminations >= 1
        # ET keeps the re-run cheaper than the original failing attempt.
        assert res.costs.work <= eng.cfg.budget

    def test_early_termination_can_be_disabled(self, fig2):
        b, n = fig2
        jumps = JumpMap()
        cfg = EngineConfig(budget=10, tau_f=0, tau_u=0, early_termination=False)
        eng = CFLEngine(b.pag, cfg, jumps=jumps)
        eng.points_to(n["s1"])
        res = eng.points_to(n["s1"])
        assert res.costs.early_terminations == 0

    def test_finished_insert_clears_unfinished(self, fig2):
        b, n = fig2
        # Fail with a small budget, then succeed with a big one: the
        # completed rounds must supersede stale unfinished markers.
        jumps = JumpMap()
        small = CFLEngine(b.pag, EngineConfig(budget=10, tau_f=0, tau_u=0), jumps=jumps)
        small.points_to(n["s1"])
        unf_before = jumps.n_unfinished_edges
        big = CFLEngine(b.pag, EngineConfig(budget=75_000, tau_f=0, tau_u=0), jumps=jumps)
        res = big.points_to(n["s1"])
        assert not res.exhausted
        assert res.objects == {n["o_n1"]}
        assert jumps.n_unfinished_edges <= unf_before


class TestJumpMapSemantics:
    def test_first_writer_wins_unfinished(self):
        m = JumpMap()
        key = (1, (), POINTS_TO)
        assert m.insert_unfinished(key, 100)
        assert not m.insert_unfinished(key, 200)
        assert m.unfinished(key) == 100
        assert m.stats.rejected_inserts == 1

    def test_first_writer_wins_finished(self):
        m = JumpMap()
        key = (1, (), POINTS_TO)
        edges = (FinishedJump(2, (), 50),)
        assert m.insert_finished(key, edges)
        assert not m.insert_finished(key, (FinishedJump(3, (), 60),))
        assert m.finished(key) == edges

    def test_finished_clears_unfinished(self):
        m = JumpMap()
        key = (1, (), POINTS_TO)
        m.insert_unfinished(key, 100)
        m.insert_finished(key, (FinishedJump(2, (), 50),))
        assert m.unfinished(key) is None
        assert m.n_unfinished_edges == 0

    def test_unfinished_rejected_after_finished(self):
        m = JumpMap()
        key = (1, (), POINTS_TO)
        m.insert_finished(key, (FinishedJump(2, (), 50),))
        assert not m.insert_unfinished(key, 100)

    def test_n_jumps_counts_edges(self):
        m = JumpMap()
        m.insert_finished((1, (), POINTS_TO), (FinishedJump(2, (), 5), FinishedJump(3, (), 9)))
        m.insert_unfinished((4, (), POINTS_TO), 77)
        assert m.n_jumps == 3
        assert m.n_finished_edges == 2
        assert m.n_unfinished_edges == 1

    def test_merge_from(self):
        a, b = JumpMap(), JumpMap()
        b.insert_finished((1, (), POINTS_TO), (FinishedJump(2, (), 5),))
        b.insert_unfinished((3, (), POINTS_TO), 10)
        assert a.merge_from(b) == 2
        assert a.n_jumps == 2
        # re-merge is fully rejected
        assert a.merge_from(b) == 0


class TestLayeredJumpMap:
    def test_overlay_reads_through(self):
        base = JumpMap()
        base.insert_finished((1, (), POINTS_TO), (FinishedJump(2, (), 5),))
        view = LayeredJumpMap(base)
        assert view.finished((1, (), POINTS_TO)) is not None
        view.insert_finished((9, (), POINTS_TO), (FinishedJump(4, (), 7),))
        assert view.finished((9, (), POINTS_TO)) is not None
        assert base.finished((9, (), POINTS_TO)) is None  # not yet committed

    def test_commit_publishes(self):
        base = JumpMap()
        view = LayeredJumpMap(base)
        view.insert_finished((9, (), POINTS_TO), (FinishedJump(4, (), 7),))
        view.insert_unfinished((5, (), POINTS_TO), 50)
        assert view.commit() == 2
        assert base.n_jumps == 2

    def test_base_entry_blocks_overlay_insert(self):
        base = JumpMap()
        base.insert_finished((1, (), POINTS_TO), (FinishedJump(2, (), 5),))
        view = LayeredJumpMap(base)
        assert not view.insert_finished((1, (), POINTS_TO), (FinishedJump(3, (), 6),))

    def test_overlay_finished_hides_base_unfinished(self):
        base = JumpMap()
        base.insert_unfinished((1, (), POINTS_TO), 40)
        view = LayeredJumpMap(base)
        # Simulate this query completing the round the base marked doomed:
        # base already has the unfinished marker, so the layered insert is
        # refused (first-writer-wins across commit boundaries)...
        assert not view.insert_unfinished((1, (), POINTS_TO), 99)
        # ...but a finished overlay entry shadows the base marker locally.
        view.overlay.insert_finished((1, (), POINTS_TO), (FinishedJump(2, (), 5),))
        assert view.unfinished((1, (), POINTS_TO)) is None

    def test_engine_runs_against_layered_view(self, fig2):
        b, n = fig2
        base = JumpMap()
        cfg = EngineConfig(tau_f=0, tau_u=0)
        first = CFLEngine(b.pag, cfg, jumps=LayeredJumpMap(base))
        r1 = first.points_to(n["s1"])
        first.jumps.commit()
        second = CFLEngine(b.pag, cfg, jumps=LayeredJumpMap(base))
        r2 = second.points_to(n["s1"])
        assert r2.points_to == r1.points_to
        assert r2.costs.jmp_taken > 0
