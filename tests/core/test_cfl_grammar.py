"""Tests for the executable grammar definitions (repro.core.cfl).

These certify the formal languages of the paper independently of the
engine's traversal code, including the Fig. 2 witness strings from
Section II-B.
"""

import pytest

from repro.core.cfl import CFG, bar, is_realizable, lfs_grammar, lfs_with_jumps, lft_grammar


class TestCYKEngine:
    def test_simple_regular(self):
        g = CFG("S")
        g.add("S", "a", "S")
        g.add("S", "b")
        assert g.recognizes(["b"])
        assert g.recognizes(["a", "a", "b"])
        assert not g.recognizes(["a"])
        assert not g.recognizes(["b", "a"])

    def test_dyck_language(self):
        g = CFG("S")
        g.add("S")
        g.add("S", "(", "S", ")", "S")
        assert g.recognizes([])
        assert g.recognizes(["(", ")"])
        assert g.recognizes(["(", "(", ")", ")", "(", ")"])
        assert not g.recognizes(["(", "(", ")"])
        assert not g.recognizes([")", "("])

    def test_epsilon_through_chain(self):
        g = CFG("S")
        g.add("S", "A", "B")
        g.add("A")
        g.add("A", "a")
        g.add("B", "b")
        assert g.recognizes(["b"])       # A -> eps
        assert g.recognizes(["a", "b"])
        assert not g.recognizes(["a"])

    def test_unit_productions(self):
        g = CFG("S")
        g.add("S", "T")
        g.add("T", "U")
        g.add("U", "x")
        assert g.recognizes(["x"])
        assert not g.recognizes(["y"])

    def test_alternate_start_symbol(self):
        g = CFG("S")
        g.add("S", "a")
        g.add("T", "b")
        assert g.recognizes(["b"], start="T")
        assert not g.recognizes(["b"])


class TestLFT:
    def test_new_only(self):
        g = lft_grammar()
        assert g.recognizes(["new"])

    def test_new_assign_star(self):
        g = lft_grammar()
        assert g.recognizes(["new", "assign"])
        assert g.recognizes(["new", "assign", "assign", "assign"])

    def test_rejects_wrong_shapes(self):
        g = lft_grammar()
        assert not g.recognizes(["assign", "new"])
        assert not g.recognizes(["new", "new"])
        assert not g.recognizes([])


class TestLFS:
    """Grammar (2) — including the Fig. 2 witness paths."""

    def test_plain_flow(self):
        g = lfs_grammar(["elems", "arr"])
        assert g.recognizes(["new", "assign"])

    def test_store_alias_load(self):
        # o --new--> y --st(f)--> [q alias p] --ld(f)--> x
        # alias = flowsToBar flowsTo = (~new) (new)  when p == q's source.
        g = lfs_grammar(["f"])
        s = ["new", "st:f", bar("new"), "new", "ld:f"]
        assert g.recognizes(s)

    def test_fig2_o6_flows_to_t_get(self):
        # Section II-B1's example: o6 -new-> t_init -st(elems)->
        # thisVector [alias thisget] -ld(elems)-> t_get where the alias
        # is witnessed through o15: thisVector <-new.. o15 ..new->
        # this_get (params treated as assign field-insensitively here).
        g = lfs_grammar(["elems", "arr"])
        witness = [
            "new",                # o6 -> t_init
            "st:elems",           # this.elems = t
            bar("assign"), bar("new"),  # thisVector backwards to o15 (via v1)
            "new", "assign",      # o15 forwards to this_get
            "ld:elems",           # t = this.elems in get
        ]
        assert g.recognizes(witness)

    def test_field_mismatch_rejected(self):
        g = lfs_grammar(["f", "g"])
        s = ["new", "st:f", bar("new"), "new", "ld:g"]
        assert not g.recognizes(s)

    def test_unbalanced_store_rejected(self):
        g = lfs_grammar(["f"])
        assert not g.recognizes(["new", "st:f"])
        assert not g.recognizes(["new", "ld:f"])

    def test_nested_aliasing(self):
        # Two levels of heap nesting: the alias pair of the f-round is
        # itself established through a g-round —
        #   alias_f = flowsToBar flowsTo
        #   flowsToBar = (~ld:g alias_g ~st:g) ~new,  alias_g = ~new new
        g = lfs_grammar(["f", "g"])
        nested_alias = [
            bar("ld:g"), bar("new"), "new", bar("st:g"), bar("new"), "new",
        ]
        s = ["new", "st:f"] + nested_alias + ["ld:f"]
        assert g.recognizes(s)
        assert g.recognizes(nested_alias, start="alias")
        # dropping the inner balance breaks membership
        broken = ["new", "st:f", bar("ld:g"), bar("new"), "new", bar("new"), "new", "ld:f"]
        assert not g.recognizes(broken)

    def test_alias_nonterminal_directly(self):
        g = lfs_grammar(["f"])
        assert g.recognizes([bar("new"), "new"], start="alias")
        assert not g.recognizes(["new", bar("new")], start="alias")


class TestJumps:
    def test_jmp_acts_as_step(self):
        g = lfs_with_jumps(["f"])
        assert g.recognizes(["new", "jmp"])
        assert g.recognizes(["new", "jmp", "assign"])
        assert g.recognizes([bar("jmp"), bar("new")], start="flowsToBar")

    def test_same_language_without_jumps(self):
        g = lfs_with_jumps(["f"])
        plain = lfs_grammar(["f"])
        for s in (["new"], ["new", "assign"],
                  ["new", "st:f", bar("new"), "new", "ld:f"]):
            assert g.recognizes(s) == plain.recognizes(s)


class TestRealizability:
    def test_empty_and_irrelevant(self):
        assert is_realizable([])
        assert is_realizable(["new", "assign", "st:f"])

    def test_balanced(self):
        # backwards traversal: ret:i pushes, param:i pops
        assert is_realizable(["ret:1", "param:1"])
        assert is_realizable(["ret:1", "ret:2", "param:2", "param:1"])

    def test_mismatch_rejected(self):
        assert not is_realizable(["ret:1", "param:2"])
        assert not is_realizable(["ret:1", "ret:2", "param:1"])

    def test_partially_balanced_allowed(self):
        # exiting with an empty stack is fine (paths need not start and
        # end in the same method)
        assert is_realizable(["param:1"])
        assert is_realizable(["param:1", "ret:2", "param:2"])

    def test_bars_swap_roles(self):
        assert is_realizable([bar("param:1"), bar("ret:1")])
        assert not is_realizable([bar("param:1"), bar("ret:2")])

    def test_fig2_s1_realizable(self):
        # s1 <-ret:2- retget ... thisget <-param:2- v1 (matching sites)
        assert is_realizable(["ret:2", "param:2"])
        # the o20 path needs ret:2 matched against param:5 — unrealisable
        assert not is_realizable(["ret:2", "param:5"])

    def test_malformed_site(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            is_realizable(["param:x"])
