"""Tests for warm-start snapshots (repro.core.snapshot).

Round-trip byte-identity, header validation order (everything rejected
before the pickle payload is touched), fingerprint determinism, and
footprint persistence (a warmed session keeps *selective*
invalidation).
"""

import json
import pickle

import pytest

from repro.core import CFLEngine, EngineConfig
from repro.core.incremental import IncrementalAnalysis
from repro.core.jumpmap import JumpMap
from repro.core.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    load_snapshot,
    pag_fingerprint,
    save_snapshot,
)
from repro.errors import InputError, SnapshotError
from repro.obs import MetricsRecorder
from repro.pag import PAG


def warm_session(b, **cfg):
    """A session with every completed round published (tau 0)."""
    inc = IncrementalAnalysis(b.pag, EngineConfig(tau_f=0, tau_u=0, **cfg))
    for var in b.pag.app_locals():
        inc.points_to(var)
    return inc


class TestRoundTrip:
    def test_byte_identical_answers_after_reload(self, fig2, tmp_path):
        b, _n = fig2
        inc = warm_session(b)
        assert inc.jumps.n_finished_edges > 0
        path = tmp_path / "fig2.snap"
        header = inc.save_snapshot(path)
        assert header.format_version == FORMAT_VERSION
        assert header.n_entries > 0

        fresh = IncrementalAnalysis(b.pag, EngineConfig(tau_f=0, tau_u=0))
        loaded = fresh.warm_from_snapshot(path)
        assert loaded == header.n_entries
        scratch = CFLEngine(b.pag, EngineConfig())
        for var in b.pag.app_locals():
            got = fresh.points_to(var)
            want = scratch.points_to(var)
            assert got.points_to == want.points_to, b.pag.name(var)

    def test_warm_run_takes_shortcuts(self, fig2, tmp_path):
        b, n = fig2
        inc = warm_session(b)
        path = tmp_path / "fig2.snap"
        inc.save_snapshot(path)
        fresh = IncrementalAnalysis(b.pag, EngineConfig(tau_f=0, tau_u=0))
        fresh.warm_from_snapshot(path)
        result = fresh.points_to(n["s1"])
        assert result.costs.jmp_taken > 0  # reused, not recomputed

    def test_counters_roundtrip(self, fig2, tmp_path):
        b, _n = fig2
        rec = MetricsRecorder()
        inc = IncrementalAnalysis(
            b.pag, EngineConfig(tau_f=0, tau_u=0), recorder=rec
        )
        for var in b.pag.app_locals():
            inc.points_to(var)
        path = tmp_path / "fig2.snap"
        inc.save_snapshot(path)
        fresh = IncrementalAnalysis(
            b.pag, EngineConfig(tau_f=0, tau_u=0), recorder=rec
        )
        fresh.warm_from_snapshot(path)
        counts = rec.snapshot()
        assert counts["snapshot.bytes"] >= 2 * path.stat().st_size
        assert counts["snapshot.entries_saved"] > 0
        assert counts["snapshot.entries_loaded"] == counts["snapshot.entries_saved"]
        assert counts["inc.entries_warmed"] == counts["snapshot.entries_loaded"]

    def test_unfinished_markers_roundtrip(self, fig2, tmp_path):
        b, n = fig2
        inc = IncrementalAnalysis(
            b.pag, EngineConfig(budget=10, tau_f=0, tau_u=0)
        )
        inc.points_to(n["s1"])  # exhausts, plants markers
        assert inc.jumps.n_unfinished_edges > 0
        path = tmp_path / "markers.snap"
        inc.save_snapshot(path)
        fresh = IncrementalAnalysis(b.pag, EngineConfig(budget=10))
        fresh.warm_from_snapshot(path)
        assert fresh.jumps.n_unfinished_edges == inc.jumps.n_unfinished_edges

    def test_any_lifecycle_map_can_warm(self, fig2, tmp_path):
        # The artifact is not tied to IncrementalAnalysis: a plain
        # JumpMap (and through the same interface, the threaded and mp
        # stores) replays the same log.
        b, _n = fig2
        inc = warm_session(b)
        path = tmp_path / "fig2.snap"
        header = inc.save_snapshot(path)
        snap = load_snapshot(path, expect_pag=b.pag)
        plain = JumpMap()
        assert plain.warm_from(snap.log) == header.n_entries
        assert plain.n_finished_edges == inc.jumps.n_finished_edges


class TestValidation:
    def make_snap(self, fig2, tmp_path, name="a.snap"):
        b, _n = fig2
        inc = warm_session(b)
        path = tmp_path / name
        inc.save_snapshot(path)
        return b, path

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"NOTASNAP\n{}\n")
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.snap")

    def _tamper_header(self, path, **patch):
        data = path.read_bytes()
        body = data[len(MAGIC):]
        nl = body.find(b"\n")
        header = json.loads(body[:nl])
        header.update(patch)
        path.write_bytes(
            MAGIC + json.dumps(header).encode() + b"\n" + body[nl + 1:]
        )

    def test_future_format_version_rejected(self, fig2, tmp_path):
        _b, path = self.make_snap(fig2, tmp_path)
        self._tamper_header(path, format_version=FORMAT_VERSION + 1)
        with pytest.raises(SnapshotError, match="newer than this reader"):
            load_snapshot(path)

    def test_wrong_grammar_rejected(self, fig2, tmp_path):
        b, path = self.make_snap(fig2, tmp_path)
        with pytest.raises(SnapshotError, match="grammars is unsound"):
            load_snapshot(path, expect_grammar="taint")
        # ...and through the session API, which always pins its grammar
        taint = IncrementalAnalysis(b.pag, EngineConfig(grammar="taint"))
        with pytest.raises(SnapshotError):
            taint.warm_from_snapshot(path)

    def test_stale_fingerprint_rejected(self, fig2, tmp_path):
        b, path = self.make_snap(fig2, tmp_path)
        v = b.pag.add_local("late@Main.main")
        o = b.pag.add_obj("o_late")
        b.pag.add_new_edge(v, o)  # the program changed since the save
        with pytest.raises(SnapshotError, match="stale snapshot"):
            load_snapshot(path, expect_pag=b.pag)

    def test_truncated_payload_rejected(self, fig2, tmp_path):
        _b, path = self.make_snap(fig2, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data) // 3])
        with pytest.raises(SnapshotError, match="corrupt snapshot payload"):
            load_snapshot(path)

    def test_entry_count_mismatch_rejected(self, fig2, tmp_path):
        _b, path = self.make_snap(fig2, tmp_path)
        self._tamper_header(path, n_entries=999)
        with pytest.raises(SnapshotError, match="header promises"):
            load_snapshot(path)

    def test_payload_fingerprint_must_match_header(self, fig2, tmp_path):
        # A header transplanted onto a different payload is caught even
        # when the caller passes no expect_pag.
        b, path = self.make_snap(fig2, tmp_path)
        other = PAG()
        other.add_local("x")
        blob = pickle.dumps(
            {"pag": other.freeze(), "log": [], "footprints": None},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._tamper_header(path, n_entries=0)
        data = path.read_bytes()
        body = data[len(MAGIC):]
        nl = body.find(b"\n")
        path.write_bytes(MAGIC + body[: nl + 1] + blob)
        with pytest.raises(SnapshotError, match="does not match its header"):
            load_snapshot(path)

    def test_snapshot_error_is_input_error(self):
        # CLI contract: validation failures exit 2 like unreadable input.
        assert issubclass(SnapshotError, InputError)


class TestFingerprint:
    def test_deterministic_and_freeze_invariant(self, fig2):
        b, _n = fig2
        fp1 = pag_fingerprint(b.pag)
        assert fp1 == pag_fingerprint(b.pag)
        assert fp1 == pag_fingerprint(b.pag.freeze())

    def test_sensitive_to_edges(self, fig2):
        b, n = fig2
        before = pag_fingerprint(b.pag)
        b.pag.add_assign_edge(n["s2"], n["s1"])
        assert pag_fingerprint(b.pag) != before

    def test_distinct_programs_differ(self, fig2):
        b, _n = fig2
        other = PAG()
        v = other.add_local("a")
        o = other.add_obj("o")
        other.add_new_edge(v, o)
        assert pag_fingerprint(other) != pag_fingerprint(b.pag)


class TestFootprintPersistence:
    def test_warmed_session_stays_selective(self, tmp_path):
        # Two disjoint islands, each with heap traffic so finished
        # entries are published.  After a snapshot round-trip the warmed
        # session must invalidate only the edited island.
        pag = PAG()
        nodes = {}
        for tag in ("a", "b"):
            p = pag.add_local(f"p_{tag}@M.m")
            v = pag.add_local(f"v_{tag}@M.m")
            x = pag.add_local(f"x_{tag}@M.m")
            op = pag.add_obj(f"o_base_{tag}")
            ov = pag.add_obj(f"o_val_{tag}")
            pag.add_new_edge(p, op)
            pag.add_new_edge(v, ov)
            pag.add_store_edge(p, f"f_{tag}", v)
            pag.add_load_edge(x, p, f"f_{tag}")
            nodes[tag] = (p, v, x, ov)
        inc = IncrementalAnalysis(pag, EngineConfig(tau_f=0, tau_u=0))
        for tag in ("a", "b"):
            inc.points_to(nodes[tag][2])
        path = tmp_path / "islands.snap"
        inc.save_snapshot(path)

        fresh = IncrementalAnalysis(pag, EngineConfig(tau_f=0, tau_u=0))
        fresh.warm_from_snapshot(path)
        fin_before = fresh.jumps.n_finished_edges
        assert fin_before > 0
        # edit island b only: island a's warmed entries must survive
        extra = fresh.add_local("extra@M.m")
        o_new = fresh.add_obj("o_extra")
        fresh.add_new_edge(extra, o_new)
        fresh.add_store_edge(nodes["b"][0], "f_b", extra)
        assert fresh.last_edit_survived > 0
        assert fresh.jumps.n_finished_edges < fin_before
        # and both islands still answer exactly
        scratch = CFLEngine(pag, EngineConfig())
        for tag in ("a", "b"):
            x = nodes[tag][2]
            assert fresh.points_to(x).points_to == \
                scratch.points_to(x).points_to

    def test_warm_without_footprints_is_conservative(self, tmp_path):
        # A log saved without footprints (e.g. exported by a parallel
        # coordinator) still warms, but the first edge edit drops the
        # unindexed entries — sound, just less selective.
        pag = PAG()
        p = pag.add_local("p@M.m")
        v = pag.add_local("v@M.m")
        x = pag.add_local("x@M.m")
        pag.add_new_edge(p, pag.add_obj("o_base"))
        pag.add_new_edge(v, pag.add_obj("o_val"))
        pag.add_store_edge(p, "f", v)
        pag.add_load_edge(x, p, "f")
        inc = IncrementalAnalysis(pag, EngineConfig(tau_f=0, tau_u=0))
        inc.points_to(x)
        path = tmp_path / "bare.snap"
        save_snapshot(
            path, pag, inc.jumps.export_log(),
            grammar="flowsto", footprints=None,
        )
        fresh = IncrementalAnalysis(pag, EngineConfig(tau_f=0, tau_u=0))
        fresh.warm_from_snapshot(path)
        assert fresh.jumps.n_finished_edges > 0
        island = fresh.add_local("iso@M.m")
        iso_obj = fresh.add_obj("o_iso")
        fresh.add_new_edge(island, iso_obj)  # touches nothing warmed
        assert fresh.jumps.n_finished_edges == 0  # conservative drop
