"""Declarative grammar tests: the registry, certification semantics,
and the grammar plumbing through engine / jump maps / tracing."""

import dataclasses

import pytest

from repro.core.cfl import bar
from repro.core.context import EMPTY_CTX
from repro.core.engine import CFLEngine, EngineConfig
from repro.core.grammar import (
    DEFAULT_GRAMMAR,
    CFLGrammar,
    ESCAPE,
    FLOWSTO,
    TAINT,
    get_grammar,
    grammar_ids,
    register_grammar,
)
from repro.core.jumpmap import JumpMap, LayeredJumpMap
from repro.core.tracing import TracingEngine
from repro.errors import AnalysisError


class TestRegistry:
    def test_builtin_grammars_registered(self):
        assert grammar_ids() == ["flowsto", "taint", "escape"]
        assert get_grammar("flowsto") is FLOWSTO
        assert get_grammar("taint") is TAINT
        assert get_grammar("escape") is ESCAPE
        assert DEFAULT_GRAMMAR == "flowsto"

    def test_unknown_grammar_raises(self):
        with pytest.raises(AnalysisError, match="unknown grammar"):
            get_grammar("points-to-but-wrong")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            register_grammar(
                dataclasses.replace(FLOWSTO, description="impostor")
            )

    def test_cfg_is_cached_per_field_alphabet(self):
        assert FLOWSTO.cfg(("f",)) is FLOWSTO.cfg(("f",))
        assert FLOWSTO.cfg(("f",)) is not FLOWSTO.cfg(("g",))


class TestCertification:
    def test_flowsto_accepts_field_balanced(self):
        assert FLOWSTO.certify(["new", "st:f", bar("new"), "new", "ld:f"],
                               ["f"])

    def test_flowsto_rejects_mismatched_fields(self):
        assert not FLOWSTO.certify(["new", "st:f", bar("new"), "new", "ld:g"],
                                   ["f", "g"])

    def test_call_terminals_project_onto_assign(self):
        # param:i/ret:i are interprocedural assignments to the CFL; the
        # realisability side condition handles the call-string part.
        assert FLOWSTO.certify(["new", "param:0", "assign", "ret:0"], [])

    def test_unrealizable_call_string_rejected(self):
        # Entering via call site 0 but returning through site 1 is
        # CFL-member (both project to assign) but violates R_CS.
        assert FLOWSTO.certify(["new", "param:0", "ret:0"], [])
        assert not FLOWSTO.certify(["new", "param:0", "ret:1"], [])

    def test_global_crossing_skips_realizability(self):
        # A reset (global read/write) clears the call stack; the
        # realisability condition is not applied across it.
        assert FLOWSTO.certify(["new", "param:0", "reset", "ret:1"], [])

    def test_skip_context_condition_flag(self):
        bad = ["new", "param:0", "ret:1"]
        assert not FLOWSTO.certify(bad, [])
        assert FLOWSTO.certify(bad, [], skip_context_condition=True)

    def test_taint_is_spliced_alias(self):
        # source <-flowsToBar- obj -flowsTo-> sink, reversed+barred on
        # the source half.
        src = ["new", "assign"]
        snk = ["new", "assign", "assign"]
        spliced = [bar(t) for t in reversed(src)] + snk
        assert TAINT.certify(spliced, [])
        # A bare flowsTo string is NOT a taint derivation.
        assert not TAINT.certify(["new", "assign"], [])

    def test_escape_accepts_heap_transitive_chain(self):
        # data flowsTo-> (store payload) <-flowsToBar- node escapes
        chain = ["new", "st:payload", bar("new"), "new", "param:0"]
        assert ESCAPE.certify(chain, ["payload"])
        assert ESCAPE.certify(["new", "reset"], [])  # direct to a global
        # escape declares no context condition: mismatched call strings
        # in a spliced chain do not fail certification.
        assert not ESCAPE.context_condition
        assert ESCAPE.certify(["new", "param:0", "ret:1"], [])

    def test_recognizes_uses_start_symbol(self):
        assert TAINT.start == "taint"
        assert ESCAPE.start == "escapes"
        assert FLOWSTO.recognizes(["new"], ())
        assert not TAINT.recognizes(["new"], ())


class TestEnginePlumbing:
    def test_typoed_grammar_fails_at_config_construction(self):
        with pytest.raises(AnalysisError, match="unknown grammar"):
            EngineConfig(grammar="flowto")

    def test_engine_refuses_unimplemented_traversal(self, fig2):
        b, _ = fig2
        exotic = dataclasses.replace(
            FLOWSTO, name="graph-reach-test", traversal="dyck"
        )
        register_grammar(exotic)
        try:
            with pytest.raises(AnalysisError, match="traversal"):
                CFLEngine(b.pag, EngineConfig(grammar="graph-reach-test"))
        finally:
            from repro.core import grammar as _g

            del _g._REGISTRY["graph-reach-test"]

    def test_taint_grammar_shares_flowsto_traversal(self, fig2):
        # Every built-in grammar rides the same sweeps: answers match.
        b, n = fig2
        base = CFLEngine(b.pag, EngineConfig()).points_to(n["s1"])
        taint = CFLEngine(
            b.pag, EngineConfig(grammar="taint")
        ).points_to(n["s1"])
        assert base.points_to == taint.points_to

    def test_engine_rejects_mismatched_jumpmap(self, fig2):
        b, _ = fig2
        with pytest.raises(AnalysisError, match="unsound"):
            CFLEngine(
                b.pag, EngineConfig(grammar="taint"), jumps=JumpMap()
            )
        # Matching label is accepted.
        CFLEngine(
            b.pag, EngineConfig(grammar="taint"), jumps=JumpMap("taint")
        )

    def test_jumpmap_merge_rejects_mismatch(self):
        with pytest.raises(ValueError, match="grammar"):
            JumpMap("flowsto").merge_from(JumpMap("taint"))

    def test_layered_jumpmap_inherits_grammar(self):
        layered = LayeredJumpMap(JumpMap("escape"))
        assert layered.grammar == "escape"
        assert layered.overlay.grammar == "escape"

    def test_witness_carries_engine_grammar(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag, EngineConfig(grammar="taint"))
        res = eng.points_to(n["s1"])
        obj, obj_ctx = sorted(res.points_to)[0]
        w = eng.explain(n["s1"], EMPTY_CTX, obj, obj_ctx)
        assert w.grammar == "taint"
        # flowsTo strings are not taint derivations: certification under
        # the witness's own grammar refuses, under flowsto it accepts.
        assert not w.certify()
        assert w.certify(grammar="flowsto")


class TestGrammarValue:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FLOWSTO.name = "other"

    def test_terminal_templates(self):
        from repro.pag.graph import EdgeKind

        assert FLOWSTO.terminal(EdgeKind.NEW, "") == "new"
        assert FLOWSTO.terminal(EdgeKind.LOAD, "f") == "ld:f"
        assert FLOWSTO.terminal(EdgeKind.STORE, "f", barred=True) == bar("st:f")
