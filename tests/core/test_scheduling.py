"""Unit tests for query scheduling (Section III-C), including the
Fig. 5 worked example's ordering."""

import pytest

from repro.core import Query, ScheduleConfig, connection_distances, schedule_queries
from repro.core.scheduling import MERGED_COMPONENT, QueryGroup
from repro.errors import SchedulingError
from repro.ir.types import TypeTable
from repro.pag import PAG


def chain(pag, names):
    """Build an assign chain: names[0] <- names[1] <- ... (value flow
    right-to-left); returns the node ids in order."""
    ids = [pag.add_local(n) for n in names]
    for dst, src in zip(ids, ids[1:]):
        pag.add_assign_edge(dst, src)
    return ids


class TestConnectionDistances:
    def test_isolated_variable(self):
        pag = PAG()
        v = pag.add_local("v")
        cd, comp = connection_distances(pag)
        assert cd[v] == 1
        assert comp[v] == v

    def test_chain_distances(self):
        pag = PAG()
        a, b, c = chain(pag, ["a", "b", "c"])
        cd, comp = connection_distances(pag)
        # one 3-node path contains them all
        assert cd[a] == cd[b] == cd[c] == 3
        assert comp[a] == comp[b] == comp[c]

    def test_branching_takes_longest(self):
        pag = PAG()
        # w feeds both a short branch (x) and a long branch (y1->y2->y)
        w = pag.add_local("w")
        x = pag.add_local("x")
        y1, y2, y = pag.add_local("y1"), pag.add_local("y2"), pag.add_local("y")
        pag.add_assign_edge(x, w)
        pag.add_assign_edge(y1, w)
        pag.add_assign_edge(y2, y1)
        pag.add_assign_edge(y, y2)
        cd, comp = connection_distances(pag)
        assert cd[x] == 2   # longest path through x is w -> x
        assert cd[y] == 4   # w -> y1 -> y2 -> y
        assert cd[x] < cd[y]
        assert comp[x] == comp[y]

    def test_cycle_modulo_recursion(self):
        pag = PAG()
        a, b = pag.add_local("a"), pag.add_local("b")
        tail = pag.add_local("t")
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(b, a)
        pag.add_assign_edge(tail, a)
        cd, _ = connection_distances(pag)
        # The a/b cycle collapses to one condensation node: CD stays finite
        # and a == b.
        assert cd[a] == cd[b]
        # the longest path through a is {a,b} -> tail, same as through tail
        assert cd[tail] == cd[a] == 2

    def test_param_and_ret_edges_connect(self):
        pag = PAG()
        actual, formal = pag.add_local("actual"), pag.add_local("formal")
        res, retv = pag.add_local("res"), pag.add_local("ret")
        pag.add_param_edge(formal, actual, 0)
        pag.add_ret_edge(res, retv, 0)
        _, comp = connection_distances(pag)
        assert comp[actual] == comp[formal]
        assert comp[res] == comp[retv]
        assert comp[actual] != comp[res]

    def test_heap_edges_do_not_connect(self):
        # "Both ld and st edges are not included since there is no
        # [direct] reachability between l1 and l2" (Section III-C1).
        pag = PAG()
        x, p = pag.add_local("x"), pag.add_local("p")
        pag.add_load_edge(x, p, "f")
        _, comp = connection_distances(pag)
        assert comp[x] != comp[p]


class TestFig5Ordering:
    """The likely order O3 (z, then x, then y) of Fig. 5(b)."""

    @pytest.fixture
    def fig5(self):
        pag = PAG()
        types = TypeTable()
        types.declare_class("Shallow")
        types.declare_class("Mid", fields={"s": "Shallow"})
        types.declare_class("Deep", fields={"m": "Mid"})

        # group A: w feeds x (short) and y (long) — like Fig. 5(a)
        w = pag.add_local("w", "Shallow")
        x = pag.add_local("x", "Shallow")
        y1 = pag.add_local("y1", "Shallow")
        y = pag.add_local("y", "Shallow")
        pag.add_assign_edge(x, w)
        pag.add_assign_edge(y1, w)
        pag.add_assign_edge(y, y1)
        # w = p.f — heap edge, does not join the groups
        p = pag.add_local("p", "Deep")
        pag.add_load_edge(w, p, "f")
        # group B: deep-typed z feeds p
        z = pag.add_local("z", "Deep")
        pag.add_assign_edge(p, z)
        return pag, types, {"x": x, "y": y, "z": z, "w": w, "p": p}

    def test_groups_and_order(self, fig5):
        pag, types, n = fig5
        queries = [Query(n["x"]), Query(n["y"]), Query(n["z"])]
        groups = schedule_queries(
            pag, queries, types, ScheduleConfig(split_large=False, merge_small=False)
        )
        assert len(groups) == 2
        # z's group first: Deep has the larger L hence the smaller DD.
        assert [q.var for q in groups[0].queries] == [n["z"]]
        # within the x/y group: x (smaller CD) before y.
        assert [q.var for q in groups[1].queries] == [n["x"], n["y"]]

    def test_dd_uses_whole_component(self, fig5):
        pag, types, n = fig5
        # Query only x and y; p (Deep, same component as nothing here)
        # does not affect their group, but the group DD is the min over
        # members — all Shallow here.
        groups = schedule_queries(
            pag,
            [Query(n["x"]), Query(n["y"])],
            types,
            ScheduleConfig(split_large=False, merge_small=False),
        )
        assert groups[0].dd == pytest.approx(1.0)


class TestSplitMerge:
    def make_components(self, sizes):
        """One assign-chain component per requested size."""
        pag = PAG()
        comps = []
        for ci, size in enumerate(sizes):
            ids = chain(pag, [f"v{ci}_{k}" for k in range(size)])
            comps.append(ids)
        return pag, comps

    def test_split_large_groups(self):
        pag, comps = self.make_components([6, 2])
        queries = [Query(v) for ids in comps for v in ids]
        groups = schedule_queries(
            pag, queries, config=ScheduleConfig(target_group_size=2, merge_small=False)
        )
        assert all(len(g) <= 2 for g in groups)
        assert sum(len(g) for g in groups) == 8

    def test_merge_small_groups(self):
        pag, comps = self.make_components([1, 1, 1, 1])
        queries = [Query(ids[0]) for ids in comps]
        groups = schedule_queries(
            pag, queries, config=ScheduleConfig(target_group_size=2, split_large=False)
        )
        assert len(groups) == 2
        assert all(len(g) == 2 for g in groups)

    def test_merge_across_components_drops_stale_id(self):
        # Regression: a group absorbing another component's queries
        # used to keep the first component's id, silently mislabelling
        # half its members.  Cross-component merges must carry the
        # MERGED_COMPONENT sentinel instead.
        pag, comps = self.make_components([1, 1, 1, 1])
        queries = [Query(ids[0]) for ids in comps]
        groups = schedule_queries(
            pag, queries, config=ScheduleConfig(target_group_size=2, split_large=False)
        )
        assert len(groups) == 2
        assert all(g.component == MERGED_COMPONENT for g in groups)

    def test_same_component_merge_keeps_id(self):
        # Splitting one component then re-merging its pieces never
        # crosses a component boundary, so the real id survives.
        pag, comps = self.make_components([4])
        queries = [Query(v) for v in comps[0]]
        groups = schedule_queries(
            pag, queries, config=ScheduleConfig(target_group_size=4)
        )
        assert len(groups) == 1
        assert groups[0].component != MERGED_COMPONENT

    def test_default_target_is_mean(self):
        pag, comps = self.make_components([4, 2])
        queries = [Query(v) for ids in comps for v in ids]
        groups = schedule_queries(pag, queries)
        # mean group size = 3: the 4-group splits into 3+1, the 1 merges
        # into the 2-group.
        assert sum(len(g) for g in groups) == 6
        assert all(len(g) <= 4 for g in groups)

    def test_queries_never_lost_or_duplicated(self):
        pag, comps = self.make_components([5, 3, 1, 1])
        queries = [Query(v) for ids in comps for v in ids]
        groups = schedule_queries(pag, queries)
        seen = [q.var for g in groups for q in g.queries]
        assert sorted(seen) == sorted(q.var for q in queries)

    def test_empty_query_list(self):
        pag, _ = self.make_components([2])
        assert schedule_queries(pag, []) == []

    def test_rejects_object_queries(self):
        pag = PAG()
        o = pag.add_obj("o1")
        with pytest.raises(SchedulingError):
            schedule_queries(pag, [Query(o)])

    def test_duplicate_query_vars_preserved(self):
        pag, comps = self.make_components([2])
        v = comps[0][0]
        queries = [Query(v), Query(v, ctx=(1,))]
        groups = schedule_queries(pag, queries)
        seen = [(q.var, q.ctx) for g in groups for q in g.queries]
        assert sorted(seen) == [(v, ()), (v, (1,))]
