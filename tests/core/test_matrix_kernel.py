"""The bulk matrix kernel against the demand engine, byte for byte.

The matrix backend's contract is *exact* equality with SeqCFL at an
unlimited budget — same ``points_to`` state sets, same context
handling, for every registered grammar and every heap-precision mode.
These are the tier-1 checks (hand programs + a small benchmark
sample); the full 20-suite sweep is tier-2
(``tests/smoke/test_matrix_sweep.py``).
"""

import pytest

np = pytest.importorskip("numpy")

from repro import build_pag, parse_program  # noqa: E402
from repro.benchgen.suites import load_benchmark, spec_of  # noqa: E402
from repro.core.engine import CFLEngine, EngineConfig  # noqa: E402
from repro.core.grammar import grammar_ids  # noqa: E402
from repro.core.matrix import MatrixKernel  # noqa: E402
from repro.core.query import Query  # noqa: E402
from repro.errors import AnalysisError, InputError  # noqa: E402
from repro.runtime.config import RuntimeConfig  # noqa: E402
from repro.runtime.executor import ParallelCFL  # noqa: E402

UNLIMITED = 10**9

BOX_SRC = """
class Box {
  field item: Object
  method put(v: Object) {
    this.item = v
  }
  method get(): Object {
    var r: Object
    r = this.item
    return r
  }
}
class Main {
  static method main() {
    var b: Box
    var v: Object
    var got: Object
    b = new Box
    v = new Object
    b.put(v)
    got = b.get()
  }
}
"""

#: Tier-1 benchmark sample: the two smallest suites.
SAMPLE = ["_200_check", "_999_checkit"]


@pytest.fixture(scope="module")
def box_build():
    return build_pag(parse_program(BOX_SRC))


def assert_identical(pag, cfg, queries=None):
    """Every query answered by the kernel equals the exhaustive-budget
    demand engine's answer, state set for state set."""
    if queries is None:
        queries = [Query(v) for v in pag.app_locals()]
    engine = CFLEngine(pag, cfg)
    kernel = MatrixKernel(pag, cfg)
    results = kernel.run_batch(queries)
    assert len(results) == len(queries)
    for q, got in zip(queries, results):
        want = engine.run_query(q)
        assert not want.exhausted, "oracle must be exact — raise the budget"
        assert not got.exhausted
        assert got.points_to == want.points_to, pag.name(pag.rep(q.var))


@pytest.mark.parametrize("grammar", sorted(grammar_ids()))
def test_box_identical_per_grammar(box_build, grammar):
    cfg = EngineConfig(budget=UNLIMITED, grammar=grammar)
    assert_identical(box_build.pag, cfg)


def test_fig2_context_sensitivity(fig2_build):
    # The paper's running example: the kernel must keep s1 -> o16 and
    # NOT merge in o20 (that merge is the context-insensitive answer).
    pag = fig2_build.pag
    cfg = EngineConfig(budget=UNLIMITED)
    assert_identical(pag, cfg)
    cfg_ci = EngineConfig(budget=UNLIMITED, context_sensitive=False)
    assert_identical(pag, cfg_ci)
    s1 = next(v for v in pag.app_locals() if pag.name(v) == "s1@Main.main")
    cs = MatrixKernel(pag, cfg).points_to(s1)
    ci = MatrixKernel(pag, cfg_ci).points_to(s1)
    assert cs.objects < ci.objects


@pytest.mark.parametrize("field_mode", ["sensitive", "match", "none"])
def test_box_field_modes(box_build, field_mode):
    cfg = EngineConfig(budget=UNLIMITED, field_mode=field_mode)
    assert_identical(box_build.pag, cfg)


@pytest.mark.parametrize("name", SAMPLE)
@pytest.mark.parametrize("grammar", sorted(grammar_ids()))
def test_benchmark_sample_identical(name, grammar):
    build = load_benchmark(name)
    cfg = spec_of(name).engine_config(budget=UNLIMITED)
    cfg.grammar = grammar
    assert_identical(build.pag, cfg, spec_of(name).workload())


def test_repeated_batches_and_new_seeds(box_build):
    # A second batch reuses the closed fixpoint; a query over a node
    # first seen later still gets the exact answer.
    pag = box_build.pag
    cfg = EngineConfig(budget=UNLIMITED)
    queries = [Query(v) for v in pag.app_locals()]
    kernel = MatrixKernel(pag, cfg)
    first = kernel.run_batch(queries[:1])
    again = kernel.run_batch(queries)
    assert first[0].points_to == again[0].points_to
    engine = CFLEngine(pag, cfg)
    for q, got in zip(queries, again):
        assert got.points_to == engine.run_query(q).points_to


def test_non_variable_query_rejected(box_build):
    pag = box_build.pag
    kernel = MatrixKernel(pag, EngineConfig(budget=UNLIMITED))
    obj = next(iter(pag.objects()))
    with pytest.raises(AnalysisError, match="not a variable"):
        kernel.points_to(obj)


def test_missing_numpy_is_input_error(box_build, monkeypatch):
    import repro.core.matrix as matrix_mod

    monkeypatch.setattr(matrix_mod, "np", None)
    with pytest.raises(InputError, match="numpy"):
        MatrixKernel(box_build.pag, EngineConfig(budget=UNLIMITED))
    # Eager config validation fails the same way, for both backends
    # that can reach the kernel.
    for backend in ("matrix", "hybrid"):
        with pytest.raises(InputError, match="numpy"):
            RuntimeConfig(backend=backend)
    # The demand backends never touch numpy.
    RuntimeConfig(backend="threads")


class TestExecutorIntegration:
    def test_matrix_backend_matches_sim(self, box_build):
        cfg = EngineConfig(budget=UNLIMITED)
        seq = ParallelCFL.from_config(
            box_build.pag, runtime=RuntimeConfig(mode="seq"), engine=cfg
        ).run()
        mat = ParallelCFL.from_config(
            box_build.pag,
            runtime=RuntimeConfig(mode="DQ", backend="matrix"),
            engine=cfg,
        ).run()
        assert mat.points_to_map() == seq.points_to_map()
        assert mat.n_queries == seq.n_queries

    @pytest.mark.parametrize(
        "crossover,expect_counter",
        [(1, "matrix.routed_bulk"), (10**6, "matrix.routed_demand")],
    )
    def test_hybrid_routes_by_batch_size(
        self, box_build, crossover, expect_counter
    ):
        from repro.obs import MetricsRecorder

        cfg = EngineConfig(budget=UNLIMITED)
        seq = ParallelCFL.from_config(
            box_build.pag, runtime=RuntimeConfig(mode="seq"), engine=cfg
        ).run()
        rec = MetricsRecorder()
        batch = ParallelCFL.from_config(
            box_build.pag,
            runtime=RuntimeConfig(
                backend="hybrid", n_threads=2, hybrid_crossover=crossover
            ),
            engine=cfg,
            recorder=rec,
        ).run()
        assert batch.points_to_map() == seq.points_to_map()
        assert batch.metrics.get(expect_counter) == 1

    def test_matrix_counters_recorded(self, box_build):
        from repro.obs import MetricsRecorder

        rec = MetricsRecorder()
        batch = ParallelCFL.from_config(
            box_build.pag,
            runtime=RuntimeConfig(backend="matrix"),
            engine=EngineConfig(budget=UNLIMITED),
            recorder=rec,
        ).run()
        for key in ("matrix.states", "matrix.edges",
                    "matrix.fixpoint_rounds", "matrix.word_ops"):
            assert batch.metrics.get(key, 0) > 0, key
        assert any(k.startswith("matrix.nnz.") for k in batch.metrics)

    def test_invalid_crossover_rejected(self):
        from repro.errors import RuntimeConfigError

        with pytest.raises(RuntimeConfigError, match="hybrid_crossover"):
            RuntimeConfig(backend="hybrid", hybrid_crossover=0)
