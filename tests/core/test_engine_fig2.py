"""Engine tests against the paper's Fig. 2 ground truth (Section II-B).

Known facts from the paper:

* ``o15`` flows to ``this_Vector`` (our ``this_init``) — Section II-B1;
* ``o6`` flows to ``t_get`` through the ``st(elems)``/``ld(elems)``
  parenthesis pair — Section II-B1;
* ``s1_main`` points to ``o16`` and **not** to ``o20`` under
  context-sensitivity — Section II-B2;
* a context-insensitive analysis conflates the two vectors, reporting
  both objects for both result variables.
"""

import pytest

from repro.core import CFLEngine, EngineConfig


@pytest.fixture
def engine(fig2):
    b, _ = fig2
    return CFLEngine(b.pag)


@pytest.fixture
def ci_engine(fig2):
    b, _ = fig2
    return CFLEngine(b.pag, EngineConfig(context_sensitive=False))


class TestFlowsTo:
    def test_vector_object_flows_to_this(self, fig2, engine):
        _, n = fig2
        reached = {v for v, _c in engine.flows_to(n["o_vec1"]).points_to}
        assert n["this_init"] in reached
        assert n["this_add"] in reached
        assert n["this_get"] in reached
        assert n["v1"] in reached

    def test_vector1_does_not_flow_to_v2(self, fig2, engine):
        _, n = fig2
        reached = {v for v, _c in engine.flows_to(n["o_vec1"]).points_to}
        assert n["v2"] not in reached

    def test_array_object_flows_to_t_get(self, fig2, engine):
        # o6 flows to t_get (paper Section II-B1).
        _, n = fig2
        reached = {v for v, _c in engine.flows_to(n["o_arr"]).points_to}
        assert n["t_get"] in reached
        assert n["t_add"] in reached
        assert n["t_init"] in reached

    def test_n1_flows_into_results(self, fig2, engine):
        _, n = fig2
        reached = {v for v, _c in engine.flows_to(n["o_n1"]).points_to}
        assert n["s1"] in reached
        assert n["e_add"] in reached
        assert n["s2"] not in reached


class TestPointsTo:
    def test_v1_points_to_its_vector(self, fig2, engine):
        _, n = fig2
        res = engine.points_to(n["v1"])
        assert res.objects == {n["o_vec1"]}
        assert not res.exhausted

    def test_s1_context_sensitive(self, fig2, engine):
        # The headline example: s1 -> {o16}, excluding o20.
        _, n = fig2
        res = engine.points_to(n["s1"])
        assert res.objects == {n["o_n1"]}

    def test_s2_context_sensitive(self, fig2, engine):
        _, n = fig2
        res = engine.points_to(n["s2"])
        assert res.objects == {n["o_n2"]}

    def test_t_get_points_to_array(self, fig2, engine):
        _, n = fig2
        res = engine.points_to(n["t_get"])
        assert res.objects == {n["o_arr"]}

    def test_this_add_sees_both_vectors(self, fig2, engine):
        # add() is called on v1 and v2: with the empty (unconstrained)
        # context its this may point to either vector object.
        _, n = fig2
        res = engine.points_to(n["this_add"])
        assert res.objects == {n["o_vec1"], n["o_vec2"]}

    def test_this_add_under_specific_context(self, fig2, engine):
        # Under the context of call site 1 (v1.add(n1)), this_add can
        # only be v1's object.
        _, n = fig2
        res = engine.points_to(n["this_add"], ctx=(1,))
        assert res.objects == {n["o_vec1"]}

    def test_e_add_under_specific_contexts(self, fig2, engine):
        _, n = fig2
        assert engine.points_to(n["e_add"], ctx=(1,)).objects == {n["o_n1"]}
        assert engine.points_to(n["e_add"], ctx=(4,)).objects == {n["o_n2"]}

    def test_costs_recorded(self, fig2, engine):
        _, n = fig2
        res = engine.points_to(n["s1"])
        assert res.costs.steps > 0
        assert res.costs.work > 0
        assert res.costs.saved == 0  # no sharing configured


class TestContextInsensitive:
    def test_s1_conflates_vectors(self, fig2, ci_engine):
        # Without context-sensitivity v1/v2 flows mix: s1 sees both
        # element objects (the imprecision the paper's Section II-B2
        # illustrates with o20).
        _, n = fig2
        res = ci_engine.points_to(n["s1"])
        assert res.objects == {n["o_n1"], n["o_n2"]}

    def test_ci_is_superset_of_cs(self, fig2, engine, ci_engine):
        _, n = fig2
        for var in ("s1", "s2", "t_get", "this_add", "v1", "e_add"):
            cs = engine.points_to(n[var]).objects
            ci = ci_engine.points_to(n[var]).objects
            assert cs <= ci, var


class TestFieldInsensitive:
    def test_field_insensitive_skips_heap(self, fig2):
        # Pure L_FT (grammar (1)): only new/assign flow; s1 gets nothing
        # because its value arrives via the heap.
        b, n = fig2
        eng = CFLEngine(b.pag, EngineConfig(field_mode="none"))
        assert eng.points_to(n["s1"]).objects == set()
        assert eng.points_to(n["v1"]).objects == {n["o_vec1"]}


class TestBudget:
    def test_tiny_budget_exhausts(self, fig2):
        b, n = fig2
        eng = CFLEngine(b.pag, EngineConfig(budget=3))
        res = eng.points_to(n["s1"])
        assert res.exhausted
        assert res.costs.steps >= 3

    def test_budget_partial_results_are_subset(self, fig2, engine):
        b, n = fig2
        full = engine.points_to(n["s1"]).points_to
        for budget in (5, 20, 60):
            eng = CFLEngine(b.pag, EngineConfig(budget=budget))
            res = eng.points_to(n["s1"])
            assert res.points_to <= full

    def test_completed_query_not_marked_exhausted(self, fig2, engine):
        _, n = fig2
        assert not engine.points_to(n["v1"]).exhausted


class TestClients:
    def test_may_alias(self, fig2, engine):
        _, n = fig2
        assert engine.may_alias(n["v1"], n["v1"])
        assert not engine.may_alias(n["v1"], n["v2"])
        assert not engine.may_alias(n["s1"], n["s2"])
        assert engine.may_alias(n["t_add"], n["t_get"])

    def test_run_batch(self, fig2, engine):
        _, n = fig2
        from repro.core import Query

        results = engine.run_batch([Query(n["v1"]), Query(n["v2"])])
        assert [r.objects for r in results] == [{n["o_vec1"]}, {n["o_vec2"]}]

    def test_points_to_rejects_object_node(self, fig2, engine):
        _, n = fig2
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            engine.points_to(n["o_vec1"])
        with pytest.raises(AnalysisError):
            engine.flows_to(n["v1"])
