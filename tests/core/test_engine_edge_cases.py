"""Engine edge cases: degenerate graphs, deep structures, and knob
interactions not covered by the main behavioural suites."""

import pytest

from repro.core import CFLEngine, EngineConfig, JumpMap, Query
from repro.errors import AnalysisError
from repro.ir import ProgramBuilder, parse_program
from repro.pag import PAG, build_pag


class TestDegenerateGraphs:
    def test_empty_pag(self):
        pag = PAG()
        v = pag.add_local("lonely")
        res = CFLEngine(pag).points_to(v)
        assert res.points_to == frozenset()
        assert not res.exhausted

    def test_unassigned_variable(self):
        pag = PAG()
        a, b = pag.add_local("a"), pag.add_local("b")
        pag.add_assign_edge(a, b)  # b never assigned
        assert CFLEngine(pag).points_to(a).points_to == frozenset()

    def test_assign_self_loop(self):
        pag = PAG()
        a = pag.add_local("a")
        o = pag.add_obj("o")
        pag.add_new_edge(a, o)
        pag.add_assign_edge(a, a)
        res = CFLEngine(pag).points_to(a)
        assert {obj for obj, _ in res.points_to} == {o}

    def test_mutual_assign_cycle_without_collapse(self):
        pag = PAG()
        a, b = pag.add_local("a"), pag.add_local("b")
        o = pag.add_obj("o")
        pag.add_new_edge(a, o)
        pag.add_assign_edge(a, b)
        pag.add_assign_edge(b, a)
        eng = CFLEngine(pag)
        assert {x for x, _ in eng.points_to(b).points_to} == {o}
        assert {x for x, _ in eng.flows_to(o).points_to} == {a, b}

    def test_store_load_self_cycle(self):
        # x = x.f; x.f = x — heap self-reference must terminate
        pag = PAG()
        x = pag.add_local("x")
        o = pag.add_obj("o")
        pag.add_new_edge(x, o)
        pag.add_load_edge(x, x, "f")
        pag.add_store_edge(x, "f", x)
        res = CFLEngine(pag).points_to(x)
        assert not res.exhausted
        assert {obj for obj, _ in res.points_to} == {o}

    def test_load_with_no_matching_store(self):
        pag = PAG()
        x, p = pag.add_local("x"), pag.add_local("p")
        o = pag.add_obj("o")
        pag.add_new_edge(p, o)
        pag.add_load_edge(x, p, "ghost")
        assert CFLEngine(pag).points_to(x).points_to == frozenset()

    def test_store_with_no_matching_load(self):
        pag = PAG()
        q, y = pag.add_local("q"), pag.add_local("y")
        o = pag.add_obj("o")
        pag.add_new_edge(y, o)
        pag.add_store_edge(q, "f", y)
        res = CFLEngine(pag).flows_to(o)
        assert {v for v, _ in res.points_to} == {y}


class TestDeepStructures:
    def test_long_assign_chain(self):
        pag = PAG()
        prev = pag.add_local("v0")
        o = pag.add_obj("o")
        pag.add_new_edge(prev, o)
        for i in range(1, 2000):
            cur = pag.add_local(f"v{i}")
            pag.add_assign_edge(cur, prev)
            prev = cur
        res = CFLEngine(pag, EngineConfig(budget=10**9)).points_to(prev)
        assert {obj for obj, _ in res.points_to} == {o}
        assert res.costs.work >= 2000

    def test_deep_call_string(self):
        # nested wrapper calls: context depth equals the chain length
        b = ProgramBuilder()
        cls = b.clazz("W")
        cls.method("w0", params=[("x", "Object")], returns="Object", static=True).ret("x")
        depth = 40
        for k in range(1, depth):
            (
                cls.method(f"w{k}", params=[("x", "Object")], returns="Object", static=True)
                .local("y", "Object")
                .call_static("W", f"w{k-1}", ["x"], result="y")
                .ret("y")
            )
        m = b.clazz("M").method("main", static=True)
        m.local("o", "Object").local("r", "Object")
        m.alloc("o", "Object")
        m.call_static("W", f"w{depth-1}", ["o"], result="r")
        build = build_pag(b.build())
        res = CFLEngine(build.pag, EngineConfig(budget=10**9)).points_to(
            build.var("r", "M.main")
        )
        assert len(res.objects) == 1
        assert not res.exhausted

    def test_nested_field_chain(self):
        # r = a.f.f.f ... through distinct holder objects
        b = ProgramBuilder()
        holder = b.clazz("H")
        holder.field("f", "Object")
        m = b.clazz("M").method("main", static=True)
        depth = 12
        m.local("leaf", "Object").alloc("leaf", "Object")
        prev_val = "leaf"
        for k in range(depth):
            m.local(f"h{k}", "H").alloc(f"h{k}", "H")
            m.store(f"h{k}", "f", prev_val)
            prev_val = f"h{k}"
        cur = prev_val
        for k in range(depth):
            m.local(f"r{k}", "H" if k < depth - 1 else "Object")
            m.load(f"r{k}", cur, "f")
            cur = f"r{k}"
        build = build_pag(b.build())
        res = CFLEngine(build.pag, EngineConfig(budget=10**9)).points_to(
            build.var(f"r{depth-1}", "M.main")
        )
        names = {build.pag.name(o) for o in res.objects}
        assert "o:M.main:0" in names  # the leaf object comes back out


class TestKnobInteractions:
    def test_match_mode_bypasses_jump_map(self, fig2):
        # field-based rounds return before consulting the map: no
        # entries should materialise
        b, n = fig2
        jumps = JumpMap()
        eng = CFLEngine(
            b.pag,
            EngineConfig(field_mode="match", tau_f=0, tau_u=0),
            jumps=jumps,
        )
        eng.points_to(n["s1"])
        assert jumps.n_jumps == 0

    def test_ci_with_sharing(self, fig2):
        b, n = fig2
        plain = CFLEngine(b.pag, EngineConfig(context_sensitive=False))
        shared = CFLEngine(
            b.pag,
            EngineConfig(context_sensitive=False, tau_f=0, tau_u=0),
            jumps=JumpMap(),
        )
        for var in b.pag.app_locals():
            assert shared.points_to(var).points_to == plain.points_to(var).points_to

    def test_zero_budget(self, fig2):
        b, n = fig2
        res = CFLEngine(b.pag, EngineConfig(budget=0)).points_to(n["s1"])
        assert res.exhausted
        assert res.points_to == frozenset()

    def test_query_with_nonempty_initial_context(self, fig2):
        b, n = fig2
        eng = CFLEngine(b.pag)
        # a bogus (unmatched) context constrains param exits: site 999
        # never matches, but partially-balanced exits through c=∅ are
        # impossible since c is never empty — expect a subset
        constrained = eng.points_to(n["this_add"], ctx=(999,))
        free = eng.points_to(n["this_add"])
        assert constrained.objects <= free.objects

    def test_global_query_normalises_context(self):
        build = build_pag(parse_program(
            """
            global G: Object
            class M { static method main() {
                var a: Object \n a = new Object \n G = a
            } }
            """
        ))
        eng = CFLEngine(build.pag)
        res = eng.points_to(build.var("G"), ctx=(5, 6))
        assert res.query.ctx == ()  # globals are context-insensitive
        assert len(res.objects) == 1

    def test_max_passes_guard(self):
        # A self-referential heap round (x = x.f; x.f = x) forces the
        # chaotic iteration to re-run; with the guard at one pass the
        # engine must fail loudly rather than return silently partial
        # results.  (Fig. 2 itself converges in a single pass.)
        pag = PAG()
        x = pag.add_local("x")
        o = pag.add_obj("o")
        pag.add_new_edge(x, o)
        pag.add_load_edge(x, x, "f")
        pag.add_store_edge(x, "f", x)
        eng = CFLEngine(pag, EngineConfig(max_passes=1))
        with pytest.raises(AnalysisError):
            eng.points_to(x)

    def test_run_batch_order_preserved(self, fig2):
        b, n = fig2
        eng = CFLEngine(b.pag)
        queries = [Query(n["s2"]), Query(n["s1"])]
        results = eng.run_batch(queries)
        assert [r.query.var for r in results] == [n["s2"], n["s1"]]
