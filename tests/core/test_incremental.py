"""Tests for incremental (add-only) analysis sessions."""

import pytest

from repro.core import CFLEngine, EngineConfig
from repro.core.incremental import IncrementalAnalysis
from repro.core.jumpmap import JumpMap
from repro.errors import InputError
from repro.obs import MetricsRecorder
from repro.pag import PAG


def fresh_answer(pag, var, budget=75_000):
    return CFLEngine(pag, EngineConfig(budget=budget)).points_to(var).points_to


class TestIncrementalEdits:
    def test_new_edge_extends_answers(self):
        pag = PAG()
        a = pag.add_local("a")
        o1 = pag.add_obj("o1")
        pag.add_new_edge(a, o1)
        inc = IncrementalAnalysis(pag)
        assert {o for o, _ in inc.points_to(a).points_to} == {o1}
        o2 = inc.add_obj("o2")
        inc.add_new_edge(a, o2)
        assert {o for o, _ in inc.points_to(a).points_to} == {o1, o2}
        assert inc.generation == 2  # node add + edge add both count

    def test_post_edit_answers_match_scratch(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag)
        # warm the session
        for var in b.pag.app_locals():
            inc.points_to(var)
        # edit: a new alias route — v3 copies v1 and reads it
        v3 = inc.add_local("v3@Main.main$new")
        out = inc.add_local("out@Main.main$new")
        inc.add_assign_edge(v3, n["v1"])
        inc.add_param_edge(n["this_get"], v3, 99)
        inc.add_ret_edge(out, n["ret_get"], 99)
        for var in list(b.pag.app_locals()) + [v3, out]:
            got = inc.points_to(var).points_to
            want = fresh_answer(b.pag, var)
            assert got == want, b.pag.name(var)

    def test_store_edit_invalidates_finished(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(
            b.pag, EngineConfig(tau_f=0, tau_u=0)
        )
        inc.points_to(n["s1"])
        assert inc.jumps.n_finished_edges > 0
        # new store into the vector's element array from a new source
        extra = inc.add_local("extra@Main.main$new")
        o_new = inc.add_obj("o_extra")
        inc.add_new_edge(extra, o_new)
        inc.add_store_edge(n["t_add"], "arr", extra)
        assert inc.jumps.n_finished_edges == 0  # invalidated
        assert inc.n_invalidated > 0
        # and the new fact is found
        got = {o for o, _ in inc.points_to(n["s1"]).points_to}
        assert o_new in got
        assert got == {o for o, _ in fresh_answer(b.pag, n["s1"])}

    def test_unfinished_markers_survive_edits(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag, EngineConfig(budget=10, tau_f=0, tau_u=0))
        inc.points_to(n["s1"])  # exhausts, plants markers
        markers_before = inc.n_reusable_markers
        assert markers_before > 0
        v = inc.add_local("fresh@x")
        inc.add_assign_edge(v, n["v1"])
        assert inc.n_reusable_markers == markers_before

    def test_node_additions_do_not_invalidate(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag, EngineConfig(tau_f=0, tau_u=0))
        inc.points_to(n["s1"])
        fin = inc.jumps.n_finished_edges
        inc.add_local("island@y")
        inc.add_obj("island_obj")
        assert inc.jumps.n_finished_edges == fin
        # node-only edits are observable (generation moves) but still
        # invalidate nothing — a fresh node is unconnected
        assert inc.generation == 2

    def test_generation_counts_edits(self):
        pag = PAG()
        a, b_ = pag.add_local("a"), pag.add_local("b")
        inc = IncrementalAnalysis(pag)
        inc.add_assign_edge(a, b_)
        o = inc.add_obj("o")
        inc.add_new_edge(b_, o)
        assert inc.generation == 3

    def test_gassign_and_load_edits(self):
        pag = PAG()
        g = pag.add_global("G")
        a = pag.add_local("a")
        x = pag.add_local("x")
        p = pag.add_local("p")
        inc = IncrementalAnalysis(pag)
        o = inc.add_obj("o")
        inc.add_new_edge(a, o)
        inc.add_gassign_edge(g, a)
        inc.add_load_edge(x, p, "f")
        assert inc.generation == 4
        assert {obj for obj, _ in inc.points_to(g).points_to} == {o}

    def test_selective_invalidation_spares_untouched_island(self):
        # Two disjoint heap islands; an edit in one must not drop the
        # other's finished entries (the blanket-clear regression).
        pag = PAG()
        nodes = {}
        for tag in ("a", "b"):
            p = pag.add_local(f"p_{tag}@M.m")
            v = pag.add_local(f"v_{tag}@M.m")
            x = pag.add_local(f"x_{tag}@M.m")
            pag.add_new_edge(p, pag.add_obj(f"o_base_{tag}"))
            pag.add_new_edge(v, pag.add_obj(f"o_val_{tag}"))
            pag.add_store_edge(p, f"f_{tag}", v)
            pag.add_load_edge(x, p, f"f_{tag}")
            nodes[tag] = (p, v, x)
        rec = MetricsRecorder()
        inc = IncrementalAnalysis(
            pag, EngineConfig(tau_f=0, tau_u=0), recorder=rec
        )
        for tag in ("a", "b"):
            inc.points_to(nodes[tag][2])
        fin_before = inc.jumps.n_finished_edges
        assert fin_before > 0
        # edit island b: new value stored into its base object
        extra = inc.add_local("extra@M.m")
        o_new = inc.add_obj("o_extra")
        inc.add_new_edge(extra, o_new)
        inc.add_store_edge(nodes["b"][0], "f_b", extra)
        # island a's entries survived, island b's were dropped
        assert inc.last_edit_invalidated > 0
        assert inc.last_edit_survived > 0
        counts = rec.snapshot()
        assert counts["inc.entries_survived"] > 0
        assert counts["inc.entries_invalidated"] > 0
        # both islands still answer exactly like a from-scratch engine
        scratch = CFLEngine(pag, EngineConfig())
        for tag in ("a", "b"):
            x = nodes[tag][2]
            assert inc.points_to(x).points_to == \
                scratch.points_to(x).points_to, tag

    def test_cached_answers_are_reused(self, fig2):
        b, n = fig2
        rec = MetricsRecorder()
        inc = IncrementalAnalysis(b.pag, recorder=rec)
        first = inc.points_to(n["s1"])
        again = inc.points_to(n["s1"])
        assert again is first
        assert rec.snapshot()["inc.queries_reused"] == 1
        # an edit touching the answer's footprint requeues it
        extra = inc.add_local("extra@Main.main")
        inc.add_assign_edge(n["s1"], extra)
        assert inc.points_to(n["s1"]) is not first

    def test_flows_to_in_session(self):
        pag = PAG()
        a = pag.add_local("a")
        inc = IncrementalAnalysis(pag)
        o = inc.add_obj("o")
        inc.add_new_edge(a, o)
        reached = {v for v, _ in inc.flows_to(o).points_to}
        assert reached == {a}


class TestSessionConfiguration:
    def test_unsupported_backend_raises(self, fig2):
        b, _n = fig2
        with pytest.raises(InputError, match="sequential engine only"):
            IncrementalAnalysis(b.pag, backend="mp")

    def test_injected_lifecycle_map_is_used(self, fig2):
        from repro.runtime.threaded import ConcurrentJumpMap

        b, n = fig2
        shared = ConcurrentJumpMap()
        inc = IncrementalAnalysis(
            b.pag, EngineConfig(tau_f=0, tau_u=0), jumps=shared
        )
        inc.points_to(n["s1"])
        assert shared.n_finished_edges > 0  # published into the store

    def test_injected_wrong_grammar_raises(self, fig2):
        b, _n = fig2
        with pytest.raises(InputError, match="unsound"):
            IncrementalAnalysis(b.pag, jumps=JumpMap(grammar="taint"))

    def test_injected_non_lifecycle_raises(self, fig2):
        b, _n = fig2
        with pytest.raises(InputError, match="lifecycle"):
            IncrementalAnalysis(b.pag, jumps=object())

    def test_clear_finished_counts_entries_not_keys(self):
        # Regression: clear_finished() used to report dropped *keys*;
        # it must report summed jmp edges, same unit as
        # n_finished_edges (multi-edge sets undercounted before).
        from repro.pag.extended import FinishedJump

        jm = JumpMap()
        edges = tuple(
            FinishedJump(target=t, target_ctx=(), steps=5) for t in (1, 2, 3)
        )
        jm.insert_finished((0, (), False), edges)
        jm.insert_finished((1, (), False), (edges[0],))
        assert jm.n_finished_edges == 4
        assert jm.clear_finished() == 4
