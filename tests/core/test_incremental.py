"""Tests for incremental (add-only) analysis sessions."""

import pytest

from repro.core import CFLEngine, EngineConfig
from repro.core.incremental import IncrementalAnalysis
from repro.pag import PAG


def fresh_answer(pag, var, budget=75_000):
    return CFLEngine(pag, EngineConfig(budget=budget)).points_to(var).points_to


class TestIncrementalEdits:
    def test_new_edge_extends_answers(self):
        pag = PAG()
        a = pag.add_local("a")
        o1 = pag.add_obj("o1")
        pag.add_new_edge(a, o1)
        inc = IncrementalAnalysis(pag)
        assert {o for o, _ in inc.points_to(a).points_to} == {o1}
        o2 = inc.add_obj("o2")
        inc.add_new_edge(a, o2)
        assert {o for o, _ in inc.points_to(a).points_to} == {o1, o2}
        assert inc.generation == 1

    def test_post_edit_answers_match_scratch(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag)
        # warm the session
        for var in b.pag.app_locals():
            inc.points_to(var)
        # edit: a new alias route — v3 copies v1 and reads it
        v3 = inc.add_local("v3@Main.main$new")
        out = inc.add_local("out@Main.main$new")
        inc.add_assign_edge(v3, n["v1"])
        inc.add_param_edge(n["this_get"], v3, 99)
        inc.add_ret_edge(out, n["ret_get"], 99)
        for var in list(b.pag.app_locals()) + [v3, out]:
            got = inc.points_to(var).points_to
            want = fresh_answer(b.pag, var)
            assert got == want, b.pag.name(var)

    def test_store_edit_invalidates_finished(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(
            b.pag, EngineConfig(tau_f=0, tau_u=0)
        )
        inc.points_to(n["s1"])
        assert inc.jumps.n_finished_edges > 0
        # new store into the vector's element array from a new source
        extra = inc.add_local("extra@Main.main$new")
        o_new = inc.add_obj("o_extra")
        inc.add_new_edge(extra, o_new)
        inc.add_store_edge(n["t_add"], "arr", extra)
        assert inc.jumps.n_finished_edges == 0  # invalidated
        assert inc.n_invalidated > 0
        # and the new fact is found
        got = {o for o, _ in inc.points_to(n["s1"]).points_to}
        assert o_new in got
        assert got == {o for o, _ in fresh_answer(b.pag, n["s1"])}

    def test_unfinished_markers_survive_edits(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag, EngineConfig(budget=10, tau_f=0, tau_u=0))
        inc.points_to(n["s1"])  # exhausts, plants markers
        markers_before = inc.n_reusable_markers
        assert markers_before > 0
        v = inc.add_local("fresh@x")
        inc.add_assign_edge(v, n["v1"])
        assert inc.n_reusable_markers == markers_before

    def test_node_additions_do_not_invalidate(self, fig2):
        b, n = fig2
        inc = IncrementalAnalysis(b.pag, EngineConfig(tau_f=0, tau_u=0))
        inc.points_to(n["s1"])
        fin = inc.jumps.n_finished_edges
        inc.add_local("island@y")
        inc.add_obj("island_obj")
        assert inc.jumps.n_finished_edges == fin
        assert inc.generation == 0

    def test_generation_counts_edits(self):
        pag = PAG()
        a, b_ = pag.add_local("a"), pag.add_local("b")
        inc = IncrementalAnalysis(pag)
        inc.add_assign_edge(a, b_)
        o = inc.add_obj("o")
        inc.add_new_edge(b_, o)
        assert inc.generation == 2

    def test_gassign_and_load_edits(self):
        pag = PAG()
        g = pag.add_global("G")
        a = pag.add_local("a")
        x = pag.add_local("x")
        p = pag.add_local("p")
        inc = IncrementalAnalysis(pag)
        o = inc.add_obj("o")
        inc.add_new_edge(a, o)
        inc.add_gassign_edge(g, a)
        inc.add_load_edge(x, p, "f")
        assert inc.generation == 3
        assert {obj for obj, _ in inc.points_to(g).points_to} == {o}

    def test_flows_to_in_session(self):
        pag = PAG()
        a = pag.add_local("a")
        inc = IncrementalAnalysis(pag)
        o = inc.add_obj("o")
        inc.add_new_edge(a, o)
        reached = {v for v, _ in inc.flows_to(o).points_to}
        assert reached == {a}
