"""Small-unit coverage: context operations, error hierarchy, node/edge
records, and the DOT / printer utilities' edge cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import EMPTY_CTX, ctx_depth, ctx_pop, ctx_push, ctx_top
from repro.errors import (
    AnalysisError,
    BudgetExhausted,
    IRError,
    PAGError,
    ParseError,
    ReproError,
    RuntimeConfigError,
    SchedulingError,
    ValidationError,
)


class TestContextOps:
    def test_push_pop_roundtrip(self):
        c = ctx_push(EMPTY_CTX, 3)
        assert ctx_top(c) == 3
        assert ctx_pop(c) == EMPTY_CTX

    def test_pop_empty_is_identity(self):
        # the paper's ∅.pop() ≡ ∅ (Algorithm 1 line 14)
        assert ctx_pop(EMPTY_CTX) == EMPTY_CTX

    def test_top_of_empty_is_none(self):
        assert ctx_top(EMPTY_CTX) is None

    def test_depth(self):
        c = ctx_push(ctx_push(EMPTY_CTX, 1), 2)
        assert ctx_depth(c) == 2
        assert ctx_depth(EMPTY_CTX) == 0

    @given(st.lists(st.integers(0, 100), max_size=12))
    def test_push_pop_laws(self, sites):
        c = EMPTY_CTX
        for s in sites:
            c = ctx_push(c, s)
        assert ctx_depth(c) == len(sites)
        for s in reversed(sites):
            assert ctx_top(c) == s
            c = ctx_pop(c)
        assert c == EMPTY_CTX

    def test_contexts_are_hashable_values(self):
        a = ctx_push(EMPTY_CTX, 1)
        b = ctx_push(EMPTY_CTX, 1)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [IRError, ParseError, ValidationError, PAGError, AnalysisError,
         BudgetExhausted, SchedulingError, RuntimeConfigError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_line_prefix(self):
        err = ParseError("boom", line=7)
        assert err.line == 7
        assert "line 7" in str(err)
        assert ParseError("no line").line is None

    def test_budget_exhausted_hint(self):
        err = BudgetExhausted(42)
        assert err.remaining_hint == 42
        assert "42" in str(err)
        assert isinstance(err, AnalysisError)


class TestPrinterEdgeCases:
    def test_empty_program(self):
        from repro.ir.builder import ProgramBuilder
        from repro.ir.printer import program_to_source

        src = program_to_source(ProgramBuilder().build())
        assert src.strip() == ""

    def test_library_and_extends_preserved(self):
        from repro.ir import parse_program
        from repro.ir.printer import program_to_source

        p = parse_program(
            "library class L { }\nclass A extends L { method m() { } }"
        )
        src = program_to_source(p)
        assert "library class L" in src
        assert "class A extends L" in src
        reparsed = parse_program(src)
        assert not reparsed.classes["L"].is_app
        assert reparsed.classes["A"].superclass == "L"

    def test_globals_emitted_first(self):
        from repro.ir import parse_program
        from repro.ir.printer import program_to_source

        p = parse_program("global G: Object\nclass A { }")
        src = program_to_source(p)
        assert src.splitlines()[0] == "global G: Object"

    def test_static_call_printed(self):
        from repro.ir import parse_program
        from repro.ir.printer import program_to_source

        p = parse_program(
            """
            class U { static method f(x: Object): Object { return x } }
            class M { static method main() {
                var a: Object \n var b: Object
                a = new Object \n b = U::f(a)
            } }
            """
        )
        src = program_to_source(p)
        assert "b = U::f(a)" in src
        parse_program(src)  # round-trips


class TestNodeEdgeRecords:
    def test_node_info_predicates(self, fig2):
        b, n = fig2
        info_var = b.pag.info(n["v1"])
        info_obj = b.pag.info(n["o_vec1"])
        assert info_var.is_variable and not info_obj.is_variable

    def test_edge_str_variants(self):
        from repro.pag.edges import Edge, EdgeKind

        assert "param(3)" in str(Edge(EdgeKind.PARAM, 1, 2, 3))
        assert "assign" in str(Edge(EdgeKind.ASSIGN, 1, 2))

    def test_finished_jump_fields(self):
        from repro.pag.extended import FinishedJump, UnfinishedJump

        fj = FinishedJump(4, (1, 2), 99)
        assert fj.target == 4 and fj.target_ctx == (1, 2) and fj.steps == 99
        assert UnfinishedJump(7).steps == 7
