"""Grammar-conformance harness tests: engine witnesses certified by CYK
against the declarative grammar, with a tier-2 sweep of all 20 suites."""

import pytest

from repro import build_pag, parse_program
from repro.benchgen.suites import suite_names
from repro.core.conformance import certify_benchmark, certify_queries
from repro.core.engine import EngineConfig
from repro.core.query import Query

SRC = """
class Box {
  field item: Object
  method put(v: Object) {
    this.item = v
  }
  method get(): Object {
    var r: Object
    r = this.item
    return r
  }
}
class Main {
  static method main() {
    var b: Box
    var v: Object
    var got: Object
    b = new Box
    v = new Object
    b.put(v)
    got = b.get()
  }
}
"""

#: Tier-1 sample: one cheap and one heavy entry per family.
SAMPLE = ["_200_check", "_209_db", "batik", "luindex"]


@pytest.fixture(scope="module")
def build():
    return build_pag(parse_program(SRC))


class TestCertifyQueries:
    def test_all_witnesses_certified(self, build):
        queries = [Query(v) for v in build.pag.app_locals()]
        report = certify_queries(build.pag, queries, name="box")
        assert report.ok
        assert report.n_witnesses > 0
        assert report.n_certified == report.n_witnesses
        assert report.grammar == "flowsto"
        assert "OK" in report.summary()

    def test_wrong_grammar_is_detected(self, build):
        # flowsTo witnesses are NOT taint derivations: certifying them
        # under the taint grammar must fail, proving the harness
        # discriminates rather than rubber-stamping.
        queries = [Query(v) for v in build.pag.app_locals()]
        report = certify_queries(
            build.pag, queries, EngineConfig(grammar="taint"), name="box"
        )
        assert not report.ok
        assert report.failures
        assert all(f.reason == "rejected" for f in report.failures)
        assert all(f.terminals for f in report.failures)
        assert "FAILURE" in report.summary()

    def test_object_cap_limits_witness_count(self, build):
        queries = [Query(v) for v in build.pag.app_locals()]
        capped = certify_queries(
            build.pag, queries, name="box", max_objects_per_query=1
        )
        assert capped.ok
        assert capped.n_witnesses <= len(queries)


class TestSuiteConformance:
    @pytest.mark.parametrize("name", SAMPLE)
    def test_sampled_suites_conform(self, name):
        report = certify_benchmark(name)
        assert report.ok, report.summary()
        assert report.n_witnesses > 0

    @pytest.mark.smoke
    @pytest.mark.parametrize("name", suite_names())
    def test_all_twenty_suites_conform(self, name):
        report = certify_benchmark(name, n_queries=25)
        assert report.ok, report.summary()
