"""Tests for witness extraction (repro.core.tracing).

Every witness is certified against the *formal* definitions: membership
in grammar (2) via the CYK recogniser and realisability per grammar (3)
— fully independent of the engine's traversal code.
"""

import pytest

from repro.core import CFLEngine
from repro.core.tracing import TracingEngine, Witness
from repro.errors import AnalysisError
from repro.ir import parse_program
from repro.pag import build_pag


def traced(src):
    build = build_pag(parse_program(src))
    return build, TracingEngine(build.pag)


def explain_all(build, engine, var):
    res = engine.points_to(var)
    assert not res.exhausted
    return [engine.explain(var, (), o, c) for o, c in res.points_to]


class TestSimpleWitnesses:
    def test_direct_new(self):
        build, eng = traced(
            "class M { static method main() { var a: Object \n a = new Object } }"
        )
        (w,) = explain_all(build, eng, build.var("a", "M.main"))
        assert w.terminals() == ["new"]
        assert w.certify()

    def test_assign_chain(self):
        build, eng = traced(
            """
            class M { static method main() {
                var a: Object \n var b: Object \n var c: Object
                a = new Object \n b = a \n c = b
            } }
            """
        )
        (w,) = explain_all(build, eng, build.var("c", "M.main"))
        assert w.terminals() == ["new", "assign", "assign"]
        assert w.certify()

    def test_call_witness_has_sites(self):
        build, eng = traced(
            """
            class Id { method id(x: Object): Object { return x } }
            class M { static method main() {
                var i: Id \n var o: Object \n var r: Object
                i = new Id \n o = new Object \n r = i.id(o)
            } }
            """
        )
        (w,) = explain_all(build, eng, build.var("r", "M.main"))
        terms = w.terminals()
        assert terms[0] == "new"
        assert any(t.startswith("param:") for t in terms)
        assert any(t.startswith("ret:") for t in terms)
        assert w.certify()

    def test_heap_witness_structure(self):
        build, eng = traced(
            """
            class Box { field val: Object }
            class M { static method main() {
                var b: Box \n var o: Object \n var r: Object
                b = new Box \n o = new Object
                b.val = o \n r = b.val
            } }
            """
        )
        (w,) = explain_all(build, eng, build.var("r", "M.main"))
        terms = w.terminals()
        assert terms[0] == "new"
        assert "st:val" in terms and "ld:val" in terms
        assert terms.index("st:val") < terms.index("ld:val")
        # the alias sub-derivation sits between st and ld
        assert "~new" in terms  # flowsToBar half of the alias
        assert w.certify()

    def test_global_crossing_marked(self):
        build, eng = traced(
            """
            global G: Object
            class M { static method main() {
                var a: Object \n var b: Object
                a = new Object \n G = a \n b = G
            } }
            """
        )
        (w,) = explain_all(build, eng, build.var("b", "M.main"))
        assert w.has_global_crossing()
        assert w.certify()  # grammar holds; realisability skipped


class TestFig2Witness:
    def test_s1_witness_certified(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag)
        res = eng.points_to(n["s1"])
        assert res.objects == {n["o_n1"]}
        ((obj, ctx),) = res.points_to
        w = eng.explain(n["s1"], (), obj, ctx)
        terms = w.terminals()
        # the witness flows through the array element field and both
        # the add and get call boundaries
        assert "st:arr" in terms and "ld:arr" in terms
        assert "param:1" in terms   # enters add at v1.add(n1)
        assert "ret:2" in terms     # exits get at s1 = v1.get()
        assert w.certify()

    def test_pretty_rendering(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag)
        res = eng.points_to(n["s1"])
        ((obj, ctx),) = res.points_to
        text = eng.explain(n["s1"], (), obj, ctx).pretty()
        assert "flowsTo" in text
        assert "[" in text  # nested alias brackets

    def test_every_fig2_answer_has_certified_witness(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag)
        for var in b.pag.app_locals():
            res = eng.points_to(var)
            for obj, ctx in res.points_to:
                w = eng.explain(var, (), obj, ctx)
                assert w.certify(), (b.pag.name(var), b.pag.name(obj))


class TestTracingOnGeneratedPrograms:
    def test_suite_program_witnesses_certify(self):
        from repro.benchgen import SynthesisParams, synthesize_program

        program = synthesize_program(
            SynthesisParams(seed=11, n_app_classes=2, methods_per_app_class=2,
                            actions_per_method=5)
        )
        build = build_pag(program)
        eng = TracingEngine(build.pag)
        checked = 0
        for var in build.pag.app_locals()[:25]:
            res = eng.points_to(var)
            if res.exhausted:
                continue
            for obj, ctx in res.points_to:
                w = eng.explain(var, (), obj, ctx)
                assert w.certify(), (build.pag.name(var), build.pag.name(obj))
                checked += 1
        assert checked > 5


class TestErrors:
    def test_explain_before_query_rejected(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag)
        with pytest.raises(AnalysisError, match="no trace"):
            eng.explain(n["s1"], (), n["o_n1"], ())

    def test_explain_wrong_object_rejected(self, fig2):
        b, n = fig2
        eng = TracingEngine(b.pag)
        eng.points_to(n["s1"])
        with pytest.raises(AnalysisError):
            eng.explain(n["s1"], (), n["o_n2"], ())  # s1 never points to o_n2

    def test_answers_match_untraced_engine(self, fig2):
        b, _ = fig2
        plain = CFLEngine(b.pag)
        traced_eng = TracingEngine(b.pag)
        for var in b.pag.app_locals():
            assert (
                traced_eng.points_to(var).points_to
                == plain.points_to(var).points_to
            )
