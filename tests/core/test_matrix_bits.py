"""Packed-bitset primitives (:mod:`repro.core.matrix`) against a pure
Python set-based reference.

Every primitive the bulk kernel builds on — packing, OR-merge,
transpose, the boolean matrix product, popcount — is cross-checked on
randomised boolean matrices spanning the word-boundary cases (widths
1, 63, 64, 65, 130) where bit packing bugs live.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.matrix import (  # noqa: E402
    WORD_BITS,
    matmul,
    n_words,
    or_into,
    pack_rows,
    popcount,
    row_indices,
    set_bit,
    transpose,
    unpack_rows,
    zero_matrix,
)

SHAPES = [(1, 1), (3, 63), (2, 64), (5, 65), (4, 130), (64, 7), (65, 65)]


def random_rows(n_rows, n_cols, rng, density=0.3):
    return [
        {c for c in range(n_cols) if rng.random() < density}
        for _ in range(n_rows)
    ]


def ref_matmul(left_rows, right_rows, n_cols):
    """Boolean product over sets: out[i] = union of right[j] for j in left[i]."""
    out = []
    for row in left_rows:
        acc = set()
        for j in row:
            if j < len(right_rows):
                acc |= right_rows[j]
        out.append(acc)
    return out


def test_n_words_boundaries():
    assert n_words(0) == 1
    assert n_words(1) == 1
    assert n_words(WORD_BITS) == 1
    assert n_words(WORD_BITS + 1) == 2
    assert n_words(3 * WORD_BITS) == 3


@pytest.mark.parametrize("n_rows,n_cols", SHAPES)
def test_pack_unpack_roundtrip(n_rows, n_cols):
    rng = random.Random(n_rows * 1000 + n_cols)
    rows = random_rows(n_rows, n_cols, rng)
    m = pack_rows(rows, n_cols)
    assert m.shape == (n_rows, n_words(n_cols))
    assert unpack_rows(m) == rows
    for i, row in enumerate(rows):
        assert row_indices(m[i]) == sorted(row)


def test_set_get_bit():
    from repro.core.matrix import get_bit

    m = zero_matrix(2, 130)
    for col in (0, 63, 64, 129):
        assert not get_bit(m, 1, col)
        set_bit(m, 1, col)
        assert get_bit(m, 1, col)
    assert unpack_rows(m) == [set(), {0, 63, 64, 129}]


@pytest.mark.parametrize("n_rows,n_cols", SHAPES)
def test_or_into_matches_union(n_rows, n_cols):
    rng = random.Random(n_rows * 77 + n_cols)
    a = random_rows(n_rows, n_cols, rng)
    b = random_rows(n_rows, n_cols, rng)
    ma, mb = pack_rows(a, n_cols), pack_rows(b, n_cols)
    changed = or_into(ma, mb)
    assert unpack_rows(ma) == [x | y for x, y in zip(a, b)]
    assert changed == any(y - x for x, y in zip(a, b))
    # Idempotent: a second merge of the same bits changes nothing.
    assert or_into(ma, mb) is False


@pytest.mark.parametrize("n_rows,n_cols", SHAPES)
def test_transpose_matches_reference(n_rows, n_cols):
    rng = random.Random(n_rows * 31 + n_cols)
    rows = random_rows(n_rows, n_cols, rng)
    t = transpose(pack_rows(rows, n_cols), n_rows, n_cols)
    expect = [
        {i for i, row in enumerate(rows) if c in row} for c in range(n_cols)
    ]
    assert unpack_rows(t) == expect


@pytest.mark.parametrize("n", [1, 5, 63, 64, 65, 100])
def test_matmul_matches_reference(n):
    rng = random.Random(n)
    left = random_rows(n, n, rng)
    right = random_rows(n, n, rng)
    got = matmul(pack_rows(left, n), pack_rows(right, n))
    assert unpack_rows(got) == ref_matmul(left, right, n)


def test_matmul_accumulates_into_out():
    n = 70
    rng = random.Random(7)
    left = random_rows(n, n, rng)
    right = random_rows(n, n, rng)
    seed = random_rows(n, n, rng, density=0.05)
    out = pack_rows(seed, n)
    matmul(pack_rows(left, n), pack_rows(right, n), out=out)
    expect = [s | p for s, p in zip(seed, ref_matmul(left, right, n))]
    assert unpack_rows(out) == expect


def test_matmul_word_ops_stat():
    n = 66
    rng = random.Random(11)
    left = pack_rows(random_rows(n, n, rng), n)
    right = pack_rows(random_rows(n, n, rng), n)
    stats = {}
    matmul(left, right, stats=stats)
    assert stats["word_ops"] > 0
    # Empty operands do no word work.
    stats2 = {}
    matmul(zero_matrix(n, n), right, stats=stats2)
    assert stats2.get("word_ops", 0) == 0


@pytest.mark.parametrize("n_rows,n_cols", SHAPES)
def test_popcount_matches_reference(n_rows, n_cols):
    rng = random.Random(n_rows + n_cols)
    rows = random_rows(n_rows, n_cols, rng)
    assert popcount(pack_rows(rows, n_cols)) == sum(len(r) for r in rows)
    assert popcount(zero_matrix(n_rows, n_cols)) == 0
