"""Tests for :class:`repro.api.Session` — the one blessed entry point.

The facade's contract: a program is parsed and lowered **once**, every
expensive artifact stays resident (PAG, sequential jump map, persistent
per-backend executors), and its answers are identical to the
lower-level engines it fronts.  Constructors, name resolution, single
queries, batches, checkers, and the compacted snapshot round-trip are
all covered here; the serving daemon built on top is covered in
``tests/serve``.
"""

from pathlib import Path

import pytest

from repro.api import (
    CFLEngine,
    EngineConfig,
    InputError,
    JumpMapLifecycle,
    MetricsRecorder,
    Query,
    RuntimeConfig,
    Session,
)

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "box_clean.mj"


@pytest.fixture()
def box():
    return Session.open(EXAMPLE)


class TestConstructors:
    def test_open_reads_and_lowers_once(self, box):
        assert box.kind == "java"
        assert box.source == str(EXAMPLE)
        assert box.pag.n_nodes > 0

    def test_open_missing_file_is_input_error(self, tmp_path):
        with pytest.raises(InputError, match="not found"):
            Session.open(tmp_path / "nope.mj")

    def test_open_directory_is_input_error(self, tmp_path):
        with pytest.raises(InputError, match="directory"):
            Session.open(tmp_path)

    def test_from_source(self):
        session = Session.from_source(
            "class M { static method main() { var a: Object\n"
            "a = new Object } }"
        )
        res = session.points_to("a@M.main")
        assert len(res.objects) == 1

    def test_from_build_adopts_the_harness_path(self, fig2):
        b, n = fig2
        session = Session.from_build(b)
        assert session.points_to(n["s1"]).objects == {n["o_n1"]}

    def test_from_pag_has_no_name_resolution(self, fig2):
        b, _ = fig2
        session = Session.from_pag(b.pag)
        with pytest.raises(InputError, match="bare PAG"):
            session.resolve("s1@Main.main")
        with pytest.raises(InputError):
            session.check()
        # node-id queries still work against the bare graph
        assert session.batch([Query(v) for v in session.app_locals()[:3]])

    def test_recorder_counts_sessions_and_builds(self):
        rec = MetricsRecorder()
        Session.open(EXAMPLE, recorder=rec)
        snap = rec.snapshot()
        assert snap["api.sessions"] == 1
        assert snap["api.pag_builds"] == 1


class TestResolutionAndQueries:
    def test_resolve_spec(self, box):
        node = box.resolve("b@Main.main")
        assert box.name(node) == "b@Main.main"

    def test_queries_default_to_app_locals(self, box):
        qs = box.queries()
        assert [q.var for q in qs] == box.app_locals()

    def test_points_to_accepts_spec_or_node(self, box):
        by_spec = box.points_to("b@Main.main")
        by_node = box.points_to(box.resolve("b@Main.main"))
        assert by_spec.objects == by_node.objects
        assert sorted(box.name(o) for o in by_spec.objects) == [
            "o:Main.main:0"
        ]

    def test_flows_to_by_label(self, box):
        res = box.flows_to("o:Main.main:0")
        names = {box.name(v) for v in res.objects}
        assert "b@Main.main" in names
        assert "same@Main.main" in names

    def test_may_alias(self, box):
        assert box.may_alias("b@Main.main", "same@Main.main")
        assert not box.may_alias("b@Main.main", "v@Main.main")

    def test_answers_match_the_share_nothing_engine(self, fig2):
        b, _ = fig2
        session = Session.from_build(b)
        seq = CFLEngine(b.pag)
        for var in b.pag.app_locals():
            assert session.points_to(var).objects == seq.points_to(var).objects

    def test_trace_points_to_certifies_each_object(self, box):
        result, witnesses = box.trace_points_to("got@Main.main")
        assert not result.exhausted
        assert len(witnesses) == len(result.points_to)
        for w in witnesses:
            assert w.certify()

    def test_trace_exhausted_has_no_witnesses(self, fig2):
        b, n = fig2
        session = Session.from_build(b, engine=EngineConfig(budget=3))
        result, witnesses = session.trace_points_to(n["s1"])
        assert result.exhausted
        assert witnesses == []


class TestBatchesAndResidency:
    def test_batch_defaults_to_app_locals(self, box):
        batch = box.batch()
        assert batch.n_queries == len(box.app_locals())

    def test_runner_is_persistent_per_key(self, box):
        r1 = box.runner(mode="DQ", n_threads=2, backend="threads")
        r2 = box.runner(mode="DQ", n_threads=2, backend="threads")
        r3 = box.runner(mode="DQ", n_threads=4, backend="threads")
        assert r1 is r2
        assert r1 is not r3

    def test_resident_jumps_survive_batches(self, fig2):
        b, _ = fig2
        session = Session.from_build(
            b,
            runtime=RuntimeConfig(mode="DQ", n_threads=2, backend="threads"),
            engine=EngineConfig(tau_f=0, tau_u=0),
        )
        assert session.resident_jumps() is None  # no batch yet
        session.batch()
        jumps = session.resident_jumps()
        assert isinstance(jumps, JumpMapLifecycle)
        n_first = jumps.n_finished_edges + jumps.n_unfinished_edges
        assert n_first > 0
        session.batch()
        assert session.resident_jumps() is jumps  # same resident store
        assert session.n_jump_entries() >= n_first

    def test_batch_answers_match_seq(self, fig2):
        b, _ = fig2
        session = Session.from_build(
            b, runtime=RuntimeConfig(mode="DQ", n_threads=2,
                                     backend="threads")
        )
        batch = session.batch()
        seq = CFLEngine(b.pag)
        for e in batch.executions:
            assert e.result.objects == seq.run_query(e.result.query).objects

    def test_close_drops_residency(self, box):
        box.batch()
        box.points_to("b@Main.main")
        box.close()
        assert box.stats()["n_runners"] == 0
        assert box.stats()["n_jump_entries"] == 0


class TestCheckers:
    def test_clean_fixture_has_no_findings(self, box):
        report = box.check(["null-deref", "downcast"])
        assert report.findings == []
        assert report.n_queries > 0

    def test_non_java_kind_is_rejected(self, fig2):
        b, _ = fig2
        session = Session.from_build(b, kind="c")
        with pytest.raises(InputError, match="mini-Java"):
            session.check()


class TestSnapshotRoundTrip:
    def test_export_log_is_compacted_to_one_entry_per_key(self, fig2):
        b, _ = fig2
        rec = MetricsRecorder()
        session = Session.from_build(
            b,
            runtime=RuntimeConfig(mode="DQ", n_threads=2, backend="threads"),
            engine=EngineConfig(tau_f=0, tau_u=0),
            recorder=rec,
        )
        # Populate both resident stores: the sequential map and a
        # persistent runner's committed map (overlapping keys).
        for var in b.pag.app_locals():
            session.points_to(var)
        session.batch()
        runner = session.runner()
        raw_logs = [session.seq.jumps.export_log()]
        raw_logs.extend(runner.export_resident_logs())
        raw = sum(len(log) for log in raw_logs)
        unique = {(kind, key) for log in raw_logs for kind, key, _ in log}

        log = session.export_log()
        keys = [(kind, key) for kind, key, _payload in log]
        assert len(keys) == len(set(keys)), "duplicate keys in epoch-0 log"
        assert set(keys) == unique
        assert 0 < len(log) <= raw
        if len(log) < raw:
            assert rec.snapshot()["snapshot.log_compacted"] == raw - len(log)

    def test_snapshot_warm_boot_round_trip(self, tmp_path):
        snap = tmp_path / "box.snap"
        cold = Session.open(EXAMPLE, engine=EngineConfig(tau_f=0, tau_u=0))
        expected = {
            spec: cold.points_to(spec).objects
            for spec in ("b@Main.main", "v@Main.main", "got@Main.main")
        }
        cold.snapshot(snap)

        warm = Session.from_snapshot(
            snap, EXAMPLE, engine=EngineConfig(tau_f=0, tau_u=0)
        )
        assert warm.n_jump_entries() > 0  # seeded before any query
        for spec, objects in expected.items():
            assert warm.points_to(spec).objects == objects

    def test_warm_from_snapshot_returns_accepted_entries(self, tmp_path):
        snap = tmp_path / "box.snap"
        cold = Session.open(EXAMPLE, engine=EngineConfig(tau_f=0, tau_u=0))
        for spec in ("b@Main.main", "got@Main.main"):
            cold.points_to(spec)
        cold.snapshot(snap)

        warm = Session.open(EXAMPLE, engine=EngineConfig(tau_f=0, tau_u=0))
        accepted = warm.warm_from_snapshot(snap)
        assert accepted > 0

    def test_warm_log_seeds_later_runners(self, tmp_path):
        snap = tmp_path / "box.snap"
        cold = Session.open(EXAMPLE, engine=EngineConfig(tau_f=0, tau_u=0))
        cold.batch(mode="DQ", n_threads=2, backend="threads")
        for spec in ("b@Main.main", "got@Main.main"):
            cold.points_to(spec)
        cold.snapshot(snap)

        warm = Session.open(
            EXAMPLE,
            runtime=RuntimeConfig(mode="DQ", n_threads=2, backend="threads"),
            engine=EngineConfig(tau_f=0, tau_u=0),
        )
        warm.warm_from_snapshot(snap)
        runner = warm.runner()  # created after the warm boot
        jumps = runner.resident_jumps()
        assert jumps is not None
        assert jumps.n_finished_edges + jumps.n_unfinished_edges > 0


class TestStats:
    def test_stats_reports_resident_state(self, box):
        stats = box.stats()
        for key in ("source", "kind", "n_nodes", "n_edges", "mode",
                    "backend", "n_threads", "budget", "grammar",
                    "n_runners", "n_jump_entries", "n_cached_queries"):
            assert key in stats
        box.points_to("b@Main.main")
        box.batch()
        after = box.stats()
        assert after["n_runners"] == 1
        assert after["n_cached_queries"] > 0
