"""Shared fixtures: the paper's Fig. 2 Vector example and helpers.

The Fig. 2 program is the paper's running example.  Ground truth from
Section II-B:

* ``o6`` (the element array allocated in the constructor) flows to
  ``t_get``;
* ``s1`` points to ``o16`` (``n1``'s object) but **not** to ``o20``
  (``n2``'s object) under context-sensitivity — a context-insensitive
  analysis reports both.

Call-site numbering in our lowering (program order):
site 0 = ``v1.<init>()``, site 1 = ``v1.add(n1)``, site 2 =
``s1 = v1.get()``, site 3 = ``v2.<init>()``, site 4 = ``v2.add(n2)``,
site 5 = ``s2 = v2.get()``.
"""

import pytest

from repro.ir import parse_program
from repro.pag import build_pag

FIG2_SRC = """
class Vector {
  field elems: Object[]
  method <init>() {
    var t: Object[]
    t = new Object[]
    this.elems = t
  }
  method add(e: Object) {
    var t: Object[]
    t = this.elems
    t.arr = e
  }
  method get(): Object {
    var t: Object[]
    var r: Object
    t = this.elems
    r = t.arr
    return r
  }
}
class Main {
  static method main() {
    var v1: Vector
    var v2: Vector
    var n1: Object
    var n2: Object
    var s1: Object
    var s2: Object
    v1 = new Vector
    v1.<init>()
    n1 = new Object
    v1.add(n1)
    s1 = v1.get()
    v2 = new Vector
    v2.<init>()
    n2 = new Object
    v2.add(n2)
    s2 = v2.get()
  }
}
"""


@pytest.fixture(scope="session")
def fig2_program():
    return parse_program(FIG2_SRC)


@pytest.fixture()
def fig2_build(fig2_program):
    return build_pag(fig2_program)


@pytest.fixture()
def fig2(fig2_build):
    """(build_result, name->node shorthand dict) for the Fig. 2 PAG."""
    b = fig2_build
    names = {
        "v1": b.var("v1", "Main.main"),
        "v2": b.var("v2", "Main.main"),
        "n1": b.var("n1", "Main.main"),
        "n2": b.var("n2", "Main.main"),
        "s1": b.var("s1", "Main.main"),
        "s2": b.var("s2", "Main.main"),
        "this_init": b.var("this", "Vector.<init>"),
        "t_init": b.var("t", "Vector.<init>"),
        "this_add": b.var("this", "Vector.add"),
        "e_add": b.var("e", "Vector.add"),
        "t_add": b.var("t", "Vector.add"),
        "this_get": b.var("this", "Vector.get"),
        "t_get": b.var("t", "Vector.get"),
        "r_get": b.var("r", "Vector.get"),
        "ret_get": b.var("$ret", "Vector.get"),
        "o_vec1": b.obj("o:Main.main:0"),   # v1's Vector (paper's o15)
        "o_n1": b.obj("o:Main.main:1"),     # n1's object (paper's o16)
        "o_vec2": b.obj("o:Main.main:2"),   # v2's Vector (paper's o19)
        "o_n2": b.obj("o:Main.main:3"),     # n2's object (paper's o20)
        "o_arr": b.obj("o:Vector.<init>:0"),  # element array (paper's o6)
    }
    return b, names
