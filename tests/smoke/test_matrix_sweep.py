"""Tier-2 byte-identity sweep: the matrix kernel vs SeqCFL on all 20
benchmark suites, for every registered grammar.

This is the acceptance bar of the matrix backend — exact state-set
equality at an unlimited budget, per query, per suite, per grammar.
Excluded from tier-1 via the ``smoke`` marker::

    PYTHONPATH=src python -m pytest tests/smoke/test_matrix_sweep.py -m smoke -q
"""

import pytest

np = pytest.importorskip("numpy")

from repro.benchgen.suites import load_benchmark, spec_of, suite_names  # noqa: E402
from repro.core.engine import CFLEngine  # noqa: E402
from repro.core.grammar import grammar_ids  # noqa: E402
from repro.core.matrix import MatrixKernel  # noqa: E402

pytestmark = pytest.mark.smoke

UNLIMITED = 10**9


@pytest.mark.parametrize("grammar", sorted(grammar_ids()))
@pytest.mark.parametrize("name", suite_names())
def test_suite_identical(name, grammar):
    build = load_benchmark(name)
    spec = spec_of(name)
    cfg = spec.engine_config(budget=UNLIMITED)
    cfg.grammar = grammar
    queries = spec.workload()

    engine = CFLEngine(build.pag, cfg)
    results = MatrixKernel(build.pag, cfg).run_batch(queries)

    mismatches = []
    for q, got in zip(queries, results):
        want = engine.run_query(q)
        assert not want.exhausted
        if got.points_to != want.points_to:
            mismatches.append(build.pag.name(build.pag.rep(q.var)))
    assert not mismatches, (
        f"{name}/{grammar}: {len(mismatches)} diverging queries, "
        f"e.g. {mismatches[:5]}"
    )
