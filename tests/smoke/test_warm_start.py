"""Tier-2 warm-start sweep: snapshot round-trip byte-identity on all
20 benchmark suites.

Per suite: a cold sequential run fills a jump map, the map goes
through a full on-disk snapshot round-trip (save → validate → load),
a **fresh** engine warms from it and re-answers the whole workload.
Asserts byte-identity against the cold answers, nonzero entries
loaded and nonzero shortcut hits — a warm start that reuses nothing
would pass a bare identity check while silently rebuilding from
epoch 0.  Excluded from tier-1 via the ``smoke`` marker::

    PYTHONPATH=src python -m pytest tests/smoke/test_warm_start.py -m smoke -q
"""

import pytest

from repro.benchgen.suites import suite_names
from repro.harness.wallclock import warm_bench

pytestmark = pytest.mark.smoke


@pytest.mark.parametrize("name", suite_names())
def test_suite_warm_start_identical(name):
    w = warm_bench(name)
    assert w["identical"], f"{name}: warm answers diverged from cold"
    assert w["entries_loaded"] > 0, f"{name}: snapshot replayed nothing"
    assert w["warm_jmp_taken"] > 0, f"{name}: warm run took no shortcuts"
    assert w["ok"]
