"""Tier-2 smoke jobs: run every example script and ``repro check`` over
the example inputs.

Excluded from the default (tier-1) run via the ``smoke`` marker — see
``[tool.pytest.ini_options]`` in pyproject.toml.  Run explicitly with::

    PYTHONPATH=src python -m pytest -m smoke -q
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.smoke

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _run(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        argv, cwd=REPO, env=env, capture_output=True, text=True, timeout=300
    )


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES.glob("*.py")),
)
def test_example_script_runs(script):
    proc = _run([sys.executable, str(EXAMPLES / script)])
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_check_on_seeded_bug_program():
    proc = _run(
        [sys.executable, "-m", "repro", "check",
         str(EXAMPLES / "account_race.mj")]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    for rule in ("null-deref", "downcast", "may-alias", "shared-field-race"):
        assert rule in proc.stdout, f"{rule} missing from:\n{proc.stdout}"
    assert "witness (certified)" in proc.stdout


def test_check_on_clean_program():
    proc = _run(
        [sys.executable, "-m", "repro", "check",
         str(EXAMPLES / "box_clean.mj")]
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


@pytest.mark.parametrize("fmt", ["json", "sarif"])
def test_check_formats_parse(fmt):
    import json

    proc = _run(
        [sys.executable, "-m", "repro", "check",
         str(EXAMPLES / "account_race.mj"), "--format", fmt]
    )
    assert proc.returncode == 1
    json.loads(proc.stdout)


@pytest.mark.parametrize("name", ["taint_leak", "escape_pool"])
def test_check_taint_escape_matches_golden(name):
    # Relative path: the golden files cite `examples/<name>.mj:<line>`.
    proc = _run(
        [sys.executable, "-m", "repro", "check",
         f"examples/{name}.mj", "--checker", "taint,escape"]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    golden = (EXAMPLES / f"{name}.golden.txt").read_text()
    assert proc.stdout == golden


def test_check_taint_smoke_job():
    # Mirror of the CI `repro check --checker taint` smoke step.
    proc = _run(
        [sys.executable, "-m", "repro", "check",
         "examples/taint_leak.mj", "--checker", "taint",
         "--format", "sarif"]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["taint"]
    assert results[0]["codeFlows"]
