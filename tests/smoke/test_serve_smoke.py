"""Tier-2 serve smoke: boot the real daemon as a subprocess and drive
it over the wire — the same job CI's serve-smoke gate runs.

The daemon is started with ``--port 0`` (ephemeral); the bound port is
parsed from the ready line.  The checks mirror the acceptance criteria:
the daemon's points-to answers diff clean against a one-shot
``repro analyze`` run over the same file, ``/healthz`` proves the PAG
was built exactly once, and SIGTERM produces a graceful drain with
exit code 0.

Excluded from tier-1 via the ``smoke`` marker; run with::

    PYTHONPATH=src python -m pytest -m smoke tests/smoke/test_serve_smoke.py -q
"""

import ast
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.smoke

REPO = Path(__file__).resolve().parents[2]
EXAMPLE = REPO / "examples" / "box_clean.mj"
READY = re.compile(r"repro-serve [^:]+: serving .* on http://([\d.]+):(\d+)")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


@pytest.fixture()
def daemon():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(EXAMPLE),
         "--port", "0", "--threads", "2"],
        cwd=REPO, env=_env(), text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        line = proc.stdout.readline()
        match = READY.match(line)
        assert match, f"no ready line, got: {line!r}"
        host, port = match.group(1), int(match.group(2))
        yield proc, host, port
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_serve_answers_match_oneshot_cli_and_drains_clean(daemon):
    proc, host, port = daemon
    from repro.serve import ServeClient

    client = ServeClient(host, port, client_id="smoke")

    # -- /healthz: resident and serving -------------------------------
    health = client.healthz()
    assert health["status"] == "serving"
    assert health["source"] == str(EXAMPLE)

    # -- answers diff clean against the one-shot CLI ------------------
    specs = ["b@Main.main", "got@Main.main", "same@Main.main"]
    served = {
        r["query"]: r["objects"] for r in client.points_to(specs * 20)
    }
    for spec in specs:
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", str(EXAMPLE),
             "--query", spec],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=120,
        )
        assert cli.returncode == 0, cli.stderr
        # `repro analyze` prints `pts(spec) = ['o1', 'o2']`
        golden = ast.literal_eval(
            cli.stdout.split("=", 1)[1].strip().rstrip("!").strip()
        )
        assert served[spec] == sorted(golden), spec

    # -- residency: one PAG build however many requests ---------------
    health = client.healthz()
    assert health["api.pag_builds"] == 1
    assert health["serve.queries"] >= 60
    assert health["jobs_done"] >= 1

    # -- graceful drain on SIGTERM ------------------------------------
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=30)
    assert proc.returncode == 0, f"stdout:\n{out}\nstderr:\n{err}"
    assert "drained" in out and "bye" in out


def test_serve_warm_boot_from_snapshot(tmp_path):
    snap = tmp_path / "box.snap"
    save = subprocess.run(
        [sys.executable, "-m", "repro", "snapshot", "save", str(EXAMPLE),
         "--out", str(snap)],
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=120,
    )
    assert save.returncode == 0, save.stderr
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(EXAMPLE),
         "--port", "0", "--threads", "2", "--snapshot", str(snap)],
        cwd=REPO, env=_env(), text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        warm_line = proc.stdout.readline()
        assert warm_line.startswith("warm boot:"), warm_line
        accepted = int(re.search(r"warm boot: (\d+)", warm_line).group(1))
        assert accepted > 0
        ready = proc.stdout.readline()
        match = READY.match(ready)
        assert match, ready

        from repro.serve import ServeClient

        client = ServeClient(match.group(1), int(match.group(2)))
        health = client.healthz()
        assert health["n_jump_entries"] > 0  # seeded before any query
        (res,) = client.points_to(["b@Main.main"])
        assert res["objects"] == ["o:Main.main:0"]
        proc.send_signal(signal.SIGTERM)
        out, _err = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_drain_endpoint_stops_the_daemon(daemon):
    proc, host, port = daemon
    from repro.serve import ServeClient

    client = ServeClient(host, port)
    assert client.drain() == {"status": "draining"}
    out, _err = proc.communicate(timeout=30)
    assert proc.returncode == 0
    assert "drained" in out
