"""End-to-end integration tests across every subsystem.

These walk the full production pipeline — text → IR → validation →
call graph → PAG → scheduling → parallel batch → statistics →
witnesses — plus cross-front-end and cross-engine consistency.
"""

import pytest

from repro import (
    AndersenSolver,
    CFLEngine,
    EngineConfig,
    ParallelCFL,
    Query,
    SteensgaardSolver,
    TracingEngine,
    build_pag,
    parse_program,
    schedule_queries,
)
from repro.benchgen import SynthesisParams, synthesize_program
from repro.cfront import lower_c, parse_c
from repro.core.refinement import RefinementDriver
from repro.ir.printer import program_to_source


@pytest.fixture(scope="module")
def pipeline_build():
    program = synthesize_program(
        SynthesisParams(seed=99, n_app_classes=3, methods_per_app_class=2,
                        actions_per_method=6)
    )
    return build_pag(program)


class TestFullPipeline:
    def test_parse_schedule_run_report(self, pipeline_build):
        build = pipeline_build
        queries = [Query(v) for v in build.pag.app_locals()]
        groups = schedule_queries(build.pag, queries, build.program.types)
        assert sum(len(g) for g in groups) == len(queries)

        seq = ParallelCFL(build, mode="seq", engine_config=EngineConfig(budget=5000)).run(queries)
        dq = ParallelCFL(build, mode="DQ", n_threads=8,
                         engine_config=EngineConfig(budget=5000)).run(queries)
        assert dq.n_queries == seq.n_queries
        assert dq.speedup_over(seq) > 1.0
        # every completed DQ answer equals the sequential answer
        seq_map = seq.points_to_map()
        for e in dq.executions:
            if not e.result.exhausted:
                key = (e.result.query.var, e.result.query.ctx)
                assert e.result.objects == seq_map[key]

    def test_three_oracles_agree(self, pipeline_build):
        """CFL(ci) == Andersen; CFL(cs) ⊆ both; Steensgaard ⊇ Andersen."""
        build = pipeline_build
        andersen = AndersenSolver(build.pag).solve()
        steens = SteensgaardSolver(build.pag).solve()
        ci = CFLEngine(build.pag, EngineConfig(context_sensitive=False, budget=10**9))
        cs = CFLEngine(build.pag, EngineConfig(budget=10**9))
        for var in build.pag.app_locals()[:30]:
            a = andersen.points_to(var)
            assert ci.points_to(var).objects == a
            assert cs.points_to(var).objects <= a
            for obj in a:
                assert steens.same_class(var, obj)

    def test_roundtrip_through_printer_preserves_analysis(self, pipeline_build):
        build = pipeline_build
        src = program_to_source(build.program)
        build2 = build_pag(parse_program(src))
        e1 = CFLEngine(build.pag, EngineConfig(budget=10**9))
        e2 = CFLEngine(build2.pag, EngineConfig(budget=10**9))
        for var in build.pag.app_locals()[:15]:
            var2 = build2.pag.rep(build2.pag.node_id(build.pag.name(var)))
            names1 = {build.pag.name(o) for o in e1.points_to(var).objects}
            names2 = {build2.pag.name(o) for o in e2.points_to(var2).objects}
            assert names1 == names2

    def test_witnesses_for_pipeline_answers(self, pipeline_build):
        build = pipeline_build
        eng = TracingEngine(build.pag)
        certified = 0
        for var in build.pag.app_locals()[:12]:
            res = eng.points_to(var)
            if res.exhausted:
                continue
            for obj, ctx in res.points_to:
                assert eng.explain(var, (), obj, ctx).certify()
                certified += 1
        assert certified >= 3

    def test_refinement_agrees_with_direct(self, pipeline_build):
        build = pipeline_build
        driver = RefinementDriver(build.pag, EngineConfig(budget=10**9))
        direct = CFLEngine(build.pag, EngineConfig(budget=10**9))
        for var in build.pag.app_locals()[:20]:
            ans = driver.points_to(var)
            assert ans.result.points_to == direct.points_to(var).points_to


class TestCrossFrontEnd:
    """The same store/load/call structure through both front-ends must
    produce isomorphic answers."""

    JAVA = """
    class Cell { field v: Object
      method put(x: Object) { this.v = x }
      method take(): Object { var r: Object \n r = this.v \n return r }
    }
    class M { static method main() {
        var c: Cell \n var a: Object \n var out: Object
        c = new Cell \n a = new Object
        c.put(a) \n out = c.take()
    } }
    """

    C = """
    func put(cell, x) { *cell = x }
    func take(cell) { var r \n r = *cell \n return r }
    func main() {
      var c, a, out, slot
      c = &slot
      a = alloc()
      put(c, a)
      out = take(c)
    }
    """

    def test_both_find_the_flow(self):
        jb = build_pag(parse_program(self.JAVA))
        je = CFLEngine(jb.pag, EngineConfig(budget=10**9))
        j_out = je.points_to(jb.var("out", "M.main")).objects
        assert {jb.pag.name(o) for o in j_out} == {"o:M.main:1"}

        cb = lower_c(parse_c(self.C))
        ce = CFLEngine(cb.pag, EngineConfig(budget=10**9))
        c_out = ce.points_to(cb.value_node("out", "main")).objects
        assert {cb.pag.name(o) for o in c_out} == {"heap:main:0"}

    def test_sharing_works_on_both(self):
        from repro.core import JumpMap

        for build, qvar in (
            (build_pag(parse_program(self.JAVA)), None),
            (lower_c(parse_c(self.C)), None),
        ):
            eng = CFLEngine(
                build.pag, EngineConfig(budget=10**9, tau_f=0, tau_u=0),
                jumps=JumpMap(),
            )
            for var in build.pag.app_locals():
                eng.points_to(var)
            assert eng.jumps.n_jumps >= 0  # exercised without error
