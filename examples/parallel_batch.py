#!/usr/bin/env python3
"""Batch-parallel analysis on a suite benchmark — a miniature Fig. 6.

Loads one of the 20 synthetic suite benchmarks, issues the standard
batch workload (all application locals) and runs the paper's four
configurations on the simulated 16-core executor, printing the speedup
ladder and the data-sharing / scheduling statistics of Table I.

Run:  python examples/parallel_batch.py [benchmark-name]
"""

import sys

from repro import ParallelCFL
from repro.benchgen import load_benchmark
from repro.benchgen.suites import spec_of, suite_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "_202_jess"
    if name not in suite_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from: {suite_names()}")

    spec = spec_of(name)
    build = load_benchmark(name)
    queries = spec.workload()
    cfg = spec.engine_config()
    print(f"benchmark  : {name} ({spec.family})")
    print(f"PAG        : {build.pag}")
    print(f"queries    : {len(queries)} (all application locals)")
    print(f"budget     : {cfg.budget} steps/query   tau_F={cfg.tau_f} tau_U={cfg.tau_u}\n")

    seq = ParallelCFL(build, mode="seq", engine_config=cfg).run(queries)
    print(f"{'config':12s} {'speedup':>8s} {'work':>9s} {'saved':>8s} "
          f"{'jumps':>6s} {'ETs':>5s} {'unanswered':>10s}")
    print("-" * 64)
    print(f"{'SeqCFL':12s} {'1.0x':>8s} {seq.total_work:9d} {0:8d} "
          f"{0:6d} {0:5d} {seq.n_exhausted:10d}")

    for mode, threads in (("naive", 1), ("naive", 16), ("D", 16), ("DQ", 16)):
        batch = ParallelCFL(
            build, mode=mode, n_threads=threads, engine_config=cfg
        ).run(queries)
        label = f"{mode} x{threads}"
        print(
            f"{label:12s} {batch.speedup_over(seq):7.1f}x {batch.total_work:9d} "
            f"{batch.total_saved:8d} {batch.n_jumps:6d} "
            f"{batch.n_early_terminations:5d} {batch.n_exhausted:10d}"
        )

    print(
        "\nReading the ladder: the naive parallelisation only buys the "
        "thread-count\n(minus contention); data sharing (D) removes the "
        "redundant re-traversals via\njmp shortcuts; query scheduling (DQ) "
        "orders dependent queries so doomed\ntraversals terminate early "
        "(Section III of the paper)."
    )


if __name__ == "__main__":
    main()
