#!/usr/bin/env python3
"""Null-dereference detection client (the debugging use-case of
Section I; the paper notes the *non-refinement* configuration exists
exactly because "the refinement-based configuration is not well-suited
to certain clients such as null-pointer detection").

A field access ``x = p.f`` or ``p.f = v`` may crash when ``p`` can be
null.  Demand strategy: issue a points-to query for every dereferenced
*base* variable only; an empty points-to set means no allocation ever
reaches the base — a definite null dereference (in this closed world),
and the cheapest of all answers to compute.

Run:  python examples/null_deref_detector.py
"""

from repro import CFLEngine, build_pag, parse_program
from repro.ir.statements import Load, Store

SRC = """
class Node {
  field next: Node
  field item: Object
}
class ListOps {
  static method build(): Node {
    var head: Node
    var payload: Object
    head = new Node
    payload = new Object
    head.item = payload
    return head
  }
  static method safe_use() {
    var n: Node
    var got: Object
    n = ListOps::build()
    got = n.item
  }
  static method buggy_use() {
    var dangling: Node
    var got: Object
    got = dangling.item          // dangling never assigned: null deref!
  }
  static method chained_bug() {
    var n: Node
    var nxt: Node
    var got: Object
    n = ListOps::build()
    nxt = n.next                 // next never stored: nxt is null...
    got = nxt.item               // ...so this dereference crashes
  }
}
"""


def main() -> None:
    program = parse_program(SRC)
    build = build_pag(program)
    engine = CFLEngine(build.pag)

    print("scanning dereference sites (demand queries on base variables only):\n")
    findings = []
    queried = 0
    for method in program.methods():
        for stmt in method.body:
            if isinstance(stmt, (Load, Store)):
                base_name = stmt.base
                base_var = method.locals.get(base_name)
                if base_var is None or base_name == "this":
                    continue
                node = build.var(base_name, method.qualified_name)
                result = engine.points_to(node)
                queried += 1
                status = "ok"
                if result.exhausted:
                    status = "unknown (budget)"
                elif not result.objects:
                    status = "NULL DEREFERENCE"
                    findings.append((method.qualified_name, stmt))
                print(
                    f"  {method.qualified_name:22s} {str(stmt):22s} "
                    f"base={base_name:10s} |pts|={len(result.objects)}  {status}"
                )

    print(f"\n{queried} demand queries issued; {len(findings)} definite bug(s):")
    for where, stmt in findings:
        print(f"  - {where}: `{stmt}` dereferences a never-assigned base")

    expected = {("ListOps.buggy_use"), ("ListOps.chained_bug")}
    found = {w for w, _ in findings}
    assert found == expected, (found, expected)
    print("\nBoth seeded bugs found, the safe uses pass — with zero")
    print("whole-program propagation.")


if __name__ == "__main__":
    main()
