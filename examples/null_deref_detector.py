#!/usr/bin/env python3
"""Null-dereference detection client (the debugging use-case of
Section I; the paper notes the *non-refinement* configuration exists
exactly because "the refinement-based configuration is not well-suited
to certain clients such as null-pointer detection").

A field access ``x = p.f`` or ``p.f = v`` may crash when ``p`` can be
null.  Demand strategy: issue a points-to query for every dereferenced
*base* variable only; a proven-empty points-to set means no allocation
ever reaches the base — a definite null dereference (in this closed
world), and the cheapest of all answers to compute.

This is now a thin wrapper over the first-class checker: the
``null-deref`` rule from :mod:`repro.analyses`, whose demanded queries
the driver batches through one scheduled ``ParallelCFL`` pass
(equivalently: ``python -m repro check FILE --checker null-deref``).

Run:  python examples/null_deref_detector.py
"""

from repro import build_pag, parse_program
from repro.analyses import render_text, run_checkers

SRC = """
class Node {
  field next: Node
  field item: Object
}
class ListOps {
  static method build(): Node {
    var head: Node
    var payload: Object
    head = new Node
    payload = new Object
    head.item = payload
    return head
  }
  static method safe_use() {
    var n: Node
    var got: Object
    n = ListOps::build()
    got = n.item
  }
  static method buggy_use() {
    var dangling: Node
    var got: Object
    got = dangling.item          // dangling never assigned: null deref!
  }
  static method chained_bug() {
    var n: Node
    var nxt: Node
    var got: Object
    n = ListOps::build()
    nxt = n.next                 // next never stored: nxt is null...
    got = nxt.item               // ...so this dereference crashes
  }
}
"""


def main() -> None:
    build = build_pag(parse_program(SRC))
    report = run_checkers(build, ["null-deref"], file="<example>")

    print("null-deref checker over all dereference sites, one batch:\n")
    print(render_text(report))

    found = {f.method for f in report.findings}
    expected = {"ListOps.buggy_use", "ListOps.chained_bug"}
    assert found == expected, (found, expected)
    print("\nBoth seeded bugs found, the safe uses pass — with zero")
    print("whole-program propagation.")


if __name__ == "__main__":
    main()
