#!/usr/bin/env python3
"""Witness explanation: *why* does a variable point to an object?

For debugging clients (the paper's Section I motivation), an answer is
only actionable with its provenance.  The :class:`TracingEngine`
records how each points-to fact was derived and reconstructs the full
``flowsTo`` witness in the paper's grammar (2) — nested alias
sub-derivations included — and certifies it against the executable
grammar definitions (CYK) plus the realisability condition of
grammar (3).

Run:  python examples/witness_explainer.py
"""

from repro import TracingEngine, build_pag, parse_program

SRC = """
class Box {
  field val: Object
  method set(v: Object) { this.val = v }
  method get(): Object { var r: Object \n r = this.val \n return r }
}
class Chain {
  static method wrap(x: Object): Object { return x }
  static method main() {
    var b: Box
    var secret: Object
    var wrapped: Object
    var leaked: Object
    b = new Box
    secret = new Object
    wrapped = Chain::wrap(secret)
    b.set(wrapped)
    leaked = b.get()
  }
}
"""


def main() -> None:
    build = build_pag(parse_program(SRC))
    engine = TracingEngine(build.pag)

    leaked = build.var("leaked", "Chain.main")
    result = engine.points_to(leaked)
    print(f"pts(leaked) = {sorted(build.pag.name(o) for o in result.objects)}\n")

    for obj, ctx in sorted(result.points_to):
        witness = engine.explain(leaked, (), obj, ctx)
        print("witness tree (alias derivations in brackets):")
        print(f"  {witness.pretty()}\n")
        print(f"flat terminal string ({len(witness.terminals())} terminals):")
        print(f"  {' '.join(witness.terminals())}\n")
        ok = witness.certify()
        print(f"certified against grammar (2) + realisability (3): {ok}")
        assert ok

    print(
        "\nReading the witness: the object reaches `leaked` by entering "
        "wrap() (param),\nreturning (ret), entering set() where st:val "
        "writes the heap, and coming back\nout through get()'s ld:val — "
        "with the alias bracket proving that set's and\nget's receivers "
        "are the same Box."
    )


if __name__ == "__main__":
    main()
