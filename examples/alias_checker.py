#!/usr/bin/env python3
"""Alias disambiguation client (the compiler use-case of Section I).

An optimiser asking "may p and q refer to the same object?" only needs
the points-to sets of *those two variables* — the motivating case for
demand-driven analysis.  This is now a thin wrapper over the
first-class ``may-alias`` checker from :mod:`repro.analyses`, which
queries every dereferenced base through the driver's single scheduled
batch and cross-checks each verdict against the whole-program Andersen
baseline: a demand "no-alias" that Andersen contradicts would be an
unsoundness and is reported at ERROR severity (equivalently:
``python -m repro check FILE --checker may-alias --severity note``).

Run:  python examples/alias_checker.py
"""

from repro import build_pag, parse_program
from repro.analyses import Severity, render_text, run_checkers

SRC = """
class Buffer {
  field data: Object
}
class Pipeline {
  static method run() {
    var in1: Buffer
    var in2: Buffer
    var shared: Buffer
    var a: Object
    var b: Object
    var x: Object
    var y: Object
    var z: Object
    in1 = new Buffer
    in2 = new Buffer
    shared = in1
    a = new Object
    b = new Object
    in1.data = a
    in2.data = b
    x = in1.data
    y = in2.data
    z = shared.data
  }
}
"""


def main() -> None:
    build = build_pag(parse_program(SRC))
    report = run_checkers(build, ["may-alias"], file="<example>")

    print("pairwise may-alias over dereferenced bases, one batch:\n")
    print(render_text(report))

    unsound = [f for f in report.findings if f.severity == Severity.ERROR]
    assert not unsound, "demand analysis reported disjoint where Andersen aliases"
    aliased = {tuple(sorted(f.extra["bases"])) for f in report.findings}
    assert aliased == {("in1", "shared")}, aliased
    print(
        "\nin1/shared alias (copied reference); in1/in2 and in2/shared stay "
        "apart.\nEvery demand verdict is within the whole-program "
        "over-approximation — the\nsoundness relationship the checker "
        "cross-checks on every run."
    )


if __name__ == "__main__":
    main()
