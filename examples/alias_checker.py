#!/usr/bin/env python3
"""Alias disambiguation client (the compiler use-case of Section I).

An optimiser asking "may p and q refer to the same object?" only needs
the points-to sets of *those two variables* — the motivating case for
demand-driven analysis.  This example runs pairwise may-alias queries
over a small program and cross-checks every verdict against the
whole-program Andersen baseline (demand answers must never be *less*
conservative than the context-insensitive whole-program ones are
precise: every demand "no-alias" must also hold under Andersen's
over-approximation being disjoint or be a context-sensitivity win).

Run:  python examples/alias_checker.py
"""

from itertools import combinations

from repro import AndersenSolver, CFLEngine, build_pag, parse_program

SRC = """
class Buffer {
  field data: Object
  method fill(v: Object) { this.data = v }
  method drain(): Object {
    var r: Object
    r = this.data
    return r
  }
}
class Pipeline {
  static method run() {
    var in1: Buffer
    var in2: Buffer
    var shared: Buffer
    var a: Object
    var b: Object
    var x: Object
    var y: Object
    var z: Object
    in1 = new Buffer
    in2 = new Buffer
    shared = in1
    a = new Object
    b = new Object
    in1.fill(a)
    in2.fill(b)
    x = in1.drain()
    y = in2.drain()
    z = shared.drain()
  }
}
"""


def main() -> None:
    build = build_pag(parse_program(SRC))
    pag = build.pag
    engine = CFLEngine(pag)
    andersen = AndersenSolver(pag).solve()

    names = ["in1", "in2", "shared", "x", "y", "z"]
    vars_ = {n: build.var(n, "Pipeline.run") for n in names}

    print(f"{'pair':16s} {'demand CFL':>12s} {'Andersen':>10s}")
    print("-" * 42)
    disagreements = 0
    for a, b in combinations(names, 2):
        demand = engine.may_alias(vars_[a], vars_[b])
        whole = andersen.may_alias(vars_[a], vars_[b])
        mark = ""
        if demand and not whole:
            mark = "  <-- unsound!"   # must never happen
            disagreements += 1
        elif whole and not demand:
            mark = "  <-- precision win"
        print(f"{a+'/'+b:16s} {str(demand):>12s} {str(whole):>10s}{mark}")

    assert disagreements == 0, "demand analysis reported aliases Andersen rules out"
    print(
        "\nin1/shared alias (copied reference); x/z read the same buffer; "
        "x/y stay apart.\nEvery demand verdict is within the whole-program "
        "over-approximation — the\nsoundness relationship the test suite "
        "property-checks on random programs."
    )


if __name__ == "__main__":
    main()
