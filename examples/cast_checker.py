#!/usr/bin/env python3
"""Downcast-safety checking with refinement (Section V-A's client).

The paper notes refinement-based schemes "can be effective for certain
clients, e.g., type casting": to prove a downcast ``(T) x`` safe, any
*sound over-approximation* of ``pts(x)`` containing only ``T``-typed
objects suffices — so most casts are dismissed by the cheap
field-*based* stage, and only the contested ones pay for full
field-sensitivity.

Run:  python examples/cast_checker.py
"""

from repro import build_pag, parse_program
from repro.core.refinement import RefinementDriver

SRC = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Kennel {
  field occupant: Animal
  method admit(a: Animal) { this.occupant = a }
  method release(): Animal {
    var r: Animal
    r = this.occupant
    return r
  }
}
class Main {
  static method main() {
    var dogs: Kennel
    var mixed: Kennel
    var d1: Dog
    var d2: Dog
    var c1: Cat
    var outD: Animal
    var outM: Animal
    dogs = new Kennel
    mixed = new Kennel
    d1 = new Dog
    d2 = new Dog
    c1 = new Cat
    dogs.admit(d1)
    dogs.admit(d2)
    mixed.admit(d1)
    mixed.admit(c1)
    outD = dogs.release()     // (Dog) outD — safe?
    outM = mixed.release()    // (Dog) outM — safe?
  }
}
"""


def main() -> None:
    program = parse_program(SRC)
    build = build_pag(program)
    types = program.types
    driver = RefinementDriver(build.pag)

    def check_cast(var_name: str, target: str) -> None:
        node = build.var(var_name, "Main.main")

        def all_subtypes(result) -> bool:
            return all(
                types.is_subtype(build.pag.type_name(o) or "Object", target)
                for o in result.objects
            )

        answer = driver.points_to(node, check=all_subtypes)
        objs = sorted(
            f"{build.pag.name(o)}:{build.pag.type_name(o)}"
            for o in answer.result.objects
        )
        verdict = "SAFE" if answer.satisfied else "UNSAFE"
        stage = "refined (field-sensitive)" if answer.refined else "coarse (field-based)"
        print(f"  ({target}) {var_name}: {verdict:6s} via {stage}")
        print(f"      pts = {objs}")

    print("checking downcasts:\n")
    check_cast("outD", "Dog")   # provable... at which stage?
    check_cast("outM", "Dog")   # genuinely unsafe
    check_cast("outM", "Animal")  # trivially safe — coarse stage enough

    print(
        f"\nrefinement rate: {driver.n_refined}/{driver.n_queries} queries "
        "needed the precise stage"
    )
    print(
        "\nThe (Animal) cast is dismissed by the cheap over-approximation; "
        "the contested\n(Dog) casts fall through to the precise analysis, "
        "which proves dogs-only for\nthe dogs kennel and correctly rejects "
        "the mixed one."
    )


if __name__ == "__main__":
    main()
