#!/usr/bin/env python3
"""Downcast-safety checking with refinement (Section V-A's client).

The paper notes refinement-based schemes "can be effective for certain
clients, e.g., type casting": to prove a downcast ``(T) x`` safe, any
*sound over-approximation* of ``pts(x)`` containing only ``T``-typed
objects suffices — so most casts are dismissed by the cheap
field-*based* stage, and only the contested ones pay for full
field-sensitivity.

This is now a thin wrapper over the first-class ``downcast`` checker
from :mod:`repro.analyses`: cast statements ``x = (T) y`` are part of
the IR, the checker demands its queries into the driver's single
scheduled batch, and its :class:`~repro.core.refinement.
RefinementDriver` reuses the batch's field-sensitive answers via the
``precise_lookup`` hook (equivalently: ``python -m repro check FILE
--checker downcast``).

Run:  python examples/cast_checker.py
"""

from repro import build_pag, parse_program
from repro.analyses import render_text, run_checkers

SRC = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Kennel {
  field occupant: Animal
  method admit(a: Animal) { this.occupant = a }
  method release(): Animal {
    var r: Animal
    r = this.occupant
    return r
  }
}
class Main {
  static method main() {
    var dogs: Kennel
    var mixed: Kennel
    var d1: Dog
    var d2: Dog
    var c1: Cat
    var outD: Animal
    var outM: Animal
    var goodDog: Dog
    var badDog: Dog
    var anyPet: Animal
    dogs = new Kennel
    mixed = new Kennel
    d1 = new Dog
    d2 = new Dog
    c1 = new Cat
    dogs.admit(d1)
    dogs.admit(d2)
    mixed.admit(d1)
    mixed.admit(c1)
    outD = dogs.release()
    outM = mixed.release()
    goodDog = (Dog) outD       // safe: the dogs kennel only holds Dogs
    badDog = (Dog) outM        // UNSAFE: the mixed kennel may hold a Cat
    anyPet = (Animal) outM     // trivially safe — coarse stage enough
  }
}
"""


def main() -> None:
    build = build_pag(parse_program(SRC))
    report = run_checkers(build, ["downcast"], file="<example>")

    print("checking downcasts (refinement over one shared batch):\n")
    print(render_text(report))

    assert len(report.findings) == 1, report.findings
    bad = report.findings[0]
    assert bad.extra["cast_type"] == "Dog", bad
    assert bad.extra["object_type"] == "Cat", bad
    assert bad.witness_certified, "witness must certify against the grammar"
    print(
        "\nThe (Animal) cast is dismissed by the cheap over-approximation; "
        "the contested\n(Dog) casts fall through to the precise stage — served "
        "from the batch — which\nproves dogs-only for the dogs kennel and "
        "correctly rejects the mixed one,\nnaming the offending Cat with a "
        "certified flowsTo witness."
    )


if __name__ == "__main__":
    main()
