#!/usr/bin/env python3
"""Quickstart: demand-driven points-to queries on the paper's Fig. 2.

Builds the running example of the paper (a tiny ``Vector`` class used
with two element types), lowers it to a pointer assignment graph and
asks the demand-driven CFL-reachability engine where ``s1`` and ``s2``
may point — demonstrating the context-sensitivity that separates the
two vectors.

Run:  python examples/quickstart.py
"""

from repro import CFLEngine, EngineConfig, build_pag, parse_program

FIG2 = """
// The paper's Fig. 2, in the mini-Java IR's concrete syntax.
class Vector {
  field elems: Object[]
  method <init>() {
    var t: Object[]
    t = new Object[]
    this.elems = t
  }
  method add(e: Object) {
    var t: Object[]
    t = this.elems
    t.arr = e                       // W t.arr
  }
  method get(): Object {
    var t: Object[]
    var r: Object
    t = this.elems
    r = t.arr                       // R t.arr
    return r
  }
}
class Main {
  static method main() {
    var v1: Vector
    var v2: Vector
    var n1: Object
    var n2: Object
    var s1: Object
    var s2: Object
    v1 = new Vector
    v1.<init>()
    n1 = new Object                 // the "String" of the paper (o16)
    v1.add(n1)
    s1 = v1.get()
    v2 = new Vector
    v2.<init>()
    n2 = new Object                 // the "Integer" of the paper (o20)
    v2.add(n2)
    s2 = v2.get()
  }
}
"""


def main() -> None:
    program = parse_program(FIG2)
    build = build_pag(program)
    print(f"program: {program}")
    print(f"PAG:     {build.pag}")

    engine = CFLEngine(build.pag)  # context- and field-sensitive

    def show(name: str) -> None:
        var = build.var(name, "Main.main")
        result = engine.points_to(var)
        objs = sorted(build.pag.name(o) for o in result.objects)
        print(
            f"  pts({name}) = {objs}   "
            f"({result.costs.work} steps, exhausted={result.exhausted})"
        )

    print("\ncontext-SENSITIVE answers (the paper's headline example):")
    for name in ("v1", "v2", "s1", "s2"):
        show(name)

    print("\nthe same queries, context-INSENSITIVELY:")
    ci = CFLEngine(build.pag, EngineConfig(context_sensitive=False))
    for name in ("s1", "s2"):
        var = build.var(name, "Main.main")
        objs = sorted(build.pag.name(o) for o in ci.points_to(var).objects)
        print(f"  pts({name}) = {objs}")

    print(
        "\nNote how the context-sensitive analysis keeps v1's and v2's "
        "elements apart\n(s1 -> n1's object only), while the insensitive "
        "one conflates them — exactly\nthe o16/o20 example of Section II-B."
    )


if __name__ == "__main__":
    main()
