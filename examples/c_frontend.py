#!/usr/bin/env python3
"""The C front-end — Section V's "expected to generalise to C as well".

The same CFL engine answers demand queries over a C-shaped program with
address-of, pointer dereferences and malloc, lowered onto the identical
PAG representation (storage cells with a single ``*`` pointee field).

Run:  python examples/c_frontend.py
"""

from repro.cfront import lower_c, parse_c
from repro.core import CFLEngine, EngineConfig

SRC = """
// A little linked-list builder with an aliasing bug to find.
func cons(head) {
  var node
  node = alloc()        // heap:cons:0 — the list node
  *node = head          // node->next = head
  return node
}

func main() {
  var list, tmp, p, q, first
  list = alloc()        // heap:main:0 — sentinel
  tmp = cons(list)
  list = tmp
  tmp = cons(list)
  list = tmp
  p = &list             // somebody keeps a pointer to the head slot...
  q = *p                // ...and reads it back
  first = *q            // first = list->next
}
"""


def main() -> None:
    build = lower_c(parse_c(SRC))
    print(f"PAG: {build.pag}\n")
    engine = CFLEngine(build.pag, EngineConfig(budget=10**9))

    for name in ("list", "q", "first"):
        node = build.value_node(name, "main")
        result = engine.points_to(node)
        objs = sorted(build.pag.name(o) for o in result.objects)
        print(f"  pts({name:6s}) = {objs}")

    q = build.value_node("q", "main")
    lst = build.value_node("list", "main")
    print(
        f"\nmay_alias(q, list) = {engine.may_alias(q, lst)}  "
        "(q reads the very slot 'list' lives in)"
    )

    first = engine.points_to(build.value_node("first", "main")).objects
    names = sorted(build.pag.name(o) for o in first)
    print(f"first (= list->next) may be: {names}")
    assert "heap:main:0" in names and "heap:cons:0" in names
    print(
        "\nSame engine, same PAG, same jmp-edge machinery — only the "
        "front-end changed."
    )


if __name__ == "__main__":
    main()
